package experiments

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/pagemgr"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/workloads"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out (§6's bullet list of DiLOS' choices): what each mechanism buys
// when it is switched off on an otherwise identical system.

// AblationRow is one ablation configuration's outcome.
type AblationRow struct {
	Label     string
	ReadGBs   float64
	WriteGBs  float64
	FaultP99  sim.Time
	AllocWait int64
}

// AblationEagerEviction compares DiLOS' eager background reclamation
// (§4.4) against an on-demand variant whose reclaimer only runs when the
// free list is empty — quantifying how much "hide reclamation in the fetch
// window" buys on the write path.
func AblationEagerEviction(sc Scale) []AblationRow {
	run := func(label string, mcfg *pagemgr.Config) AblationRow {
		row := AblationRow{Label: label}
		for pass, write := range map[int]bool{0: false, 1: true} {
			eng := sim.New()
			sys := core.New(eng, core.Config{
				CacheFrames: frames(sc.SeqPages, 0.125),
				Cores:       2,
				RemoteBytes: sc.SeqPages*4096 + (64 << 20),
				Fabric:      fabric.DefaultParams(),
				Prefetcher:  prefetch.NewReadahead(0),
				Mgr:         mcfg,
			})
			sys.Start()
			var d sim.Time
			sys.Launch("seq", 0, func(sp *core.DDCProc) {
				base, _ := sys.MmapDDC(sc.SeqPages)
				if write {
					d = workloads.SeqWrite(sp, base, sc.SeqPages)
				} else {
					d = workloads.SeqRead(sp, base, sc.SeqPages)
				}
			})
			eng.Run()
			if write {
				collect("abl1/"+label+"/write", sys)
			} else {
				collect("abl1/"+label+"/read", sys)
			}
			gbs := stats.GBps(float64(sc.SeqPages*4096) / d.Seconds())
			if write {
				row.WriteGBs = gbs
				row.AllocWait += sys.Mgr.AllocWaits.N
			} else {
				row.ReadGBs = gbs
				row.FaultP99 = sys.FaultLat.P99()
			}
			_ = pass
		}
		return row
	}
	lazy := pagemgr.DefaultConfig(frames(sc.SeqPages, 0.125))
	lazy.LowWater = 1
	lazy.HighWater = 2
	lazy.CleanerPeriod = 500 * sim.Microsecond
	return []AblationRow{
		run("eager (DiLOS default)", nil),
		run("on-demand reclamation", &lazy),
	}
}

// AblationSharedQueue compares §4.5's shared-nothing per-module queues
// against one shared queue per core. The tax shows where the paper says it
// does: a module with a deep backlog — the cleaner, flushing dirty pages
// in batches — shares a FIFO with the fault handler's fetches, so demand
// fetches complete behind write-backs they have nothing to do with.
// Sequential write at 12.5 % cache keeps the cleaner saturated.
func AblationSharedQueue(sc Scale) []AblationRow {
	run := func(label string, shared bool) AblationRow {
		eng := sim.New()
		sys := core.New(eng, core.Config{
			CacheFrames: frames(sc.SeqPages, 0.125),
			Cores:       2,
			RemoteBytes: sc.SeqPages*4096 + (64 << 20),
			Fabric:      fabric.DefaultParams(),
			Prefetcher:  prefetch.NewReadahead(0),
			SharedQP:    shared,
		})
		sys.Start()
		var d sim.Time
		sys.Launch("seq", 0, func(sp *core.DDCProc) {
			base, _ := sys.MmapDDC(sc.SeqPages)
			d = workloads.SeqWrite(sp, base, sc.SeqPages)
		})
		eng.Run()
		collect("abl2/"+label, sys)
		return AblationRow{
			Label:     label,
			WriteGBs:  stats.GBps(float64(sc.SeqPages*4096) / d.Seconds()),
			FaultP99:  sys.FaultLat.P99(),
			AllocWait: sys.Mgr.AllocWaits.N,
		}
	}
	return []AblationRow{
		run("shared-nothing (DiLOS default)", false),
		run("one queue per core", true),
	}
}

// MultiNodeRow is one sharding configuration's outcome (the §5.1
// future-work extension implemented here).
type MultiNodeRow struct {
	Nodes   int
	ReadGBs float64
	PerLink []float64 // RX GB moved per memory node
}

// ExtMultiNode measures sequential-read bandwidth as the remote backing is
// sharded across 1, 2, and 4 memory nodes (page-round-robin striping).
func ExtMultiNode(sc Scale) []MultiNodeRow {
	var rows []MultiNodeRow
	for _, nodes := range []int{1, 2, 4} {
		eng := sim.New()
		sys := core.New(eng, core.Config{
			CacheFrames: frames(sc.SeqPages, 0.125),
			Cores:       2,
			RemoteBytes: sc.SeqPages*4096 + (64 << 20),
			Fabric:      fabric.DefaultParams(),
			Prefetcher:  prefetch.NewTrend(), // deep window: wire-bound
			MemNodes:    nodes,
		})
		sys.Start()
		var d sim.Time
		sys.Launch("seq", 0, func(sp *core.DDCProc) {
			base, _ := sys.MmapDDC(sc.SeqPages)
			d = workloads.SeqRead(sp, base, sc.SeqPages)
		})
		eng.Run()
		collect(fmt.Sprintf("ext1/nodes=%d", nodes), sys)
		row := MultiNodeRow{
			Nodes:   nodes,
			ReadGBs: stats.GBps(float64(sc.SeqPages*4096) / d.Seconds()),
		}
		for _, link := range sys.Links {
			row.PerLink = append(row.PerLink, float64(link.RxBytes.N)/1e9)
		}
		rows = append(rows, row)
	}
	return rows
}

// PlacementRow is one placement policy's outcome on the ext3 extension:
// sequential-read bandwidth over four memory nodes, plus how evenly the
// policy spread the fetch traffic across the links.
type PlacementRow struct {
	Policy  string
	ReadGBs float64
	PerLink []float64 // RX GB moved per memory node
	Spread  float64   // max/min per-link RX; 1.0 is perfectly even
}

// ExtPlacement compares the placement policies end-to-end: the ext1
// sequential read, fixed at four memory nodes, once per policy. Striping
// interleaves consecutive pages (even under any access pattern); blocked
// placement keeps runs contiguous (one hot node at a time on a sweep);
// hashed placement scatters pages pseudo-randomly (even in expectation).
func ExtPlacement(sc Scale) []PlacementRow {
	const nodes = 4
	var rows []PlacementRow
	for _, pol := range placement.Policies() {
		eng := sim.New()
		sys := core.New(eng, core.Config{
			CacheFrames: frames(sc.SeqPages, 0.125),
			Cores:       2,
			RemoteBytes: sc.SeqPages*4096 + (64 << 20),
			Fabric:      fabric.DefaultParams(),
			Prefetcher:  prefetch.NewTrend(),
			MemNodes:    nodes,
			Placement:   pol,
		})
		sys.Start()
		var d sim.Time
		sys.Launch("seq", 0, func(sp *core.DDCProc) {
			base, _ := sys.MmapDDC(sc.SeqPages)
			d = workloads.SeqRead(sp, base, sc.SeqPages)
		})
		eng.Run()
		collect("ext3/"+pol.Name(), sys)
		row := PlacementRow{
			Policy:  pol.Name(),
			ReadGBs: stats.GBps(float64(sc.SeqPages*4096) / d.Seconds()),
		}
		minRx, maxRx := -1.0, 0.0
		for _, link := range sys.Links {
			gb := float64(link.RxBytes.N) / 1e9
			row.PerLink = append(row.PerLink, gb)
			if minRx < 0 || gb < minRx {
				minRx = gb
			}
			if gb > maxRx {
				maxRx = gb
			}
		}
		if minRx > 0 {
			row.Spread = maxRx / minRx
		}
		rows = append(rows, row)
	}
	return rows
}

// ThreadScaleRow is one thread count's PageRank outcome.
type ThreadScaleRow struct {
	Workers int
	Elapsed sim.Time
	Check   uint64
}

// ExtThreadScaling runs PageRank on DiLOS at 12.5 % local memory with 1,
// 2, and 4 worker threads — per-core queue pairs and per-core prefetch
// mappers are what let fault handling scale with the cores (§4.5).
func ExtThreadScaling(sc Scale) []ThreadScaleRow {
	var rows []ThreadScaleRow
	for _, w := range []int{1, 2, 4} {
		elapsed, check := gapbsRunWorkers(SysDiLOSRA, sc, false, 0.125, w)
		rows = append(rows, ThreadScaleRow{Workers: w, Elapsed: elapsed, Check: check})
	}
	return rows
}
