package experiments

import (
	"bytes"
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/kvcache"
	"dilos/internal/obs"
	"dilos/internal/pagemgr"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
)

// This file holds ext12: the KV-cache tiering workload (internal/kvcache)
// over the pool. The inference phase driver — prefill streams each
// completed layer out through the batched write-back path, decode walks
// the layers reading every past token — runs on three arms per cache
// ratio:
//
//   - none:      demand paging only; every cold layer pays its faults in
//     the decode critical path.
//   - readahead: the kernel's sequential prefetcher. Regions are handed
//     out bit-reversed, so layer-to-layer jumps defeat address-pattern
//     prediction — this arm shows why semantic knowledge is needed.
//   - guided:    the layerwise guide (kvcache.Guide) prefetches layer
//     L+1's pages while layer L computes.
//
// Sequence lifetime drives eviction mid-run: half the sequences finish
// (DiscardRange frees their frames en masse), fresh sequences recycle the
// regions, and one long-lived survivor spills its cold early layers.

// KV workload knobs, bound to dilosbench's -kv-* flags.
var (
	// KVLayers is the transformer depth (regions per sequence).
	KVLayers = 8
	// KVSeqs is the number of concurrently live sequences.
	KVSeqs = 16
	// KVDecode is the number of decode rounds (tokens per sequence).
	KVDecode = 32
)

// KVFractions are the local-memory ratios ext12 sweeps.
var KVFractions = []float64{0.125, 0.25, 0.5}

// KVRow is one arm × cache-ratio measurement. All fields are comparable,
// so the determinism leg checks rows with ==.
type KVRow struct {
	Arm      string
	Fraction float64

	TTFT     sim.Time // mean prefill (time-to-first-token) latency
	TPOTMean sim.Time // mean decode-step (time-per-output-token) latency
	TPOTP99  sim.Time

	DecodeToks int      // tokens generated across all sequences
	DecodeTime sim.Time // summed decode-step latency
	TokPerSec  float64  // decode throughput

	Prefills     int
	Majors       int64
	BadReads     int64
	GuidePages   int64 // pages covered by guide prefetches (guided arm)
	FreedPages   int64 // frames discarded by mid-run Finish
	SpilledPages int64 // frames pushed out by SpillEarlyLayers
}

// KVResult is the ext12 outcome.
type KVResult struct {
	Seed                 uint64
	Layers, Seqs, Rounds int
	Rows                 []KVRow

	// SpeedupSmallest gates the guide: guided ÷ none decode throughput at
	// the smallest cache ratio (must be ≥ 1.5).
	SpeedupSmallest float64
	// Deterministic is the same-seed rerun check: identical row and
	// byte-identical /metrics + /statusz pages.
	Deterministic bool
	// MetricsHasKV asserts the kvcache.* stat families reached /metrics.
	MetricsHasKV bool
	PageBytes    int
}

// kvRand is splitmix64 — the jitter source for per-sequence prefill
// lengths, seeded from the experiment seed so runs replay exactly.
func kvRand(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ext12Run executes the full phase-driver lifecycle on one arm at one
// cache ratio and returns the measured row plus the rendered
// observability page (the determinism leg's comparison bytes).
func ext12Run(arm string, frac float64, seed uint64) (KVRow, []byte) {
	p := kvcache.DefaultParams()
	p.Layers = KVLayers
	wsPages := uint64(KVSeqs) * uint64(p.Layers) * p.RegionPages()

	eng := sim.New()
	var pf prefetch.Prefetcher
	if arm == "readahead" {
		pf = prefetch.NewReadahead(0)
	}
	cfg := core.Config{
		CacheFrames: frames(wsPages, frac),
		Cores:       4,
		RemoteBytes: wsPages*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  pf,
		Batch:       true,
		Tel:         recorderFor(),
		SampleEvery: SampleEvery,
	}
	// Prefetch never forces reclamation (it drops targets when the pool
	// has no free frame), so the reclaimer's watermarks must cover a full
	// layerwise burst — the vm.watermark tuning every inference box does.
	// All three arms share the sizing, so the comparison stays fair.
	mcfg := pagemgr.DefaultConfig(cfg.CacheFrames)
	mcfg.LowWater = cfg.CacheFrames / 4
	mcfg.HighWater = cfg.CacheFrames / 2
	cfg.Mgr = &mcfg
	applyCores(&cfg)
	sys := core.New(eng, cfg)
	var g *kvcache.Guide
	if arm == "guided" {
		g = kvcache.NewGuide(sys)
	}
	sys.Start()

	row := KVRow{Arm: arm, Fraction: frac}
	var cache *kvcache.Cache
	sys.Launch("kv", 0, func(sp *core.DDCProc) {
		c, err := kvcache.New(sys, p, KVSeqs)
		if err != nil {
			panic(err)
		}
		cache = c
		rng := seed

		// Prefill lengths leave room for every decode round: a sequence
		// admitted at any point can still append KVDecode tokens.
		avail := p.MaxTokens - KVDecode
		if avail < 2 {
			panic(fmt.Sprintf("ext12: %d decode rounds leave no room in %d-token regions",
				KVDecode, p.MaxTokens))
		}
		var ttft sim.Time
		prefill := func() *kvcache.Sequence {
			s, err := c.Begin()
			if err != nil {
				panic(err)
			}
			n := avail/2 + int(kvRand(&rng)%uint64(avail-avail/2))
			t0 := sp.Now()
			if err := c.Prefill(sp, s, n, g); err != nil {
				panic(err)
			}
			ttft += sp.Now() - t0
			row.Prefills++
			return s
		}

		seqs := make([]*kvcache.Sequence, 0, KVSeqs)
		for i := 0; i < KVSeqs; i++ {
			seqs = append(seqs, prefill())
		}
		for r := 0; r < KVDecode; r++ {
			if r == KVDecode/2 {
				// Churn: even-index sequences finish (frames freed en
				// masse, no write-back) and fresh sequences recycle their
				// regions.
				for i := 0; i < len(seqs); i += 2 {
					row.FreedPages += int64(c.Finish(sp, seqs[i]))
				}
				for i := 0; i < len(seqs); i += 2 {
					seqs[i] = prefill()
				}
			}
			for i, s := range seqs {
				d, err := c.DecodeStep(sp, s, g)
				if err != nil {
					panic(err)
				}
				row.DecodeTime += d
				row.DecodeToks++
				if r == KVDecode/2 && i == 1 {
					// The long-lived survivor spills its cold early layers
					// while they are still resident from this step's reads —
					// decode won't touch layer 0 again for a full model
					// depth, so they are the coldest KV in DRAM.
					row.SpilledPages = int64(c.SpillEarlyLayers(sp, s, 2))
				}
			}
		}
		for _, s := range seqs {
			c.Finish(sp, s)
		}
		row.TTFT = ttft / sim.Time(row.Prefills)
	})
	eng.Run()

	row.TPOTMean = cache.DecodeStepH.Mean()
	row.TPOTP99 = cache.DecodeStepH.P99()
	row.TokPerSec = float64(row.DecodeToks) / row.DecodeTime.Seconds()
	row.Majors = sys.MajorFaults.N
	row.BadReads = cache.BadReads.N
	if g != nil {
		row.GuidePages = g.PrefetchPages.N
	}
	collect("ext12/"+arm+"@"+FracLabel(frac), sys)
	page := obs.AppendMetrics(nil, sys.Registry().Snapshot(), sys.Tel)
	page = sys.AppendStatus(page, sys.Eng.Now())
	return row, page
}

// ExtKV runs ext12: three arms across KVFractions, the guided-vs-none
// throughput gate at the smallest ratio, and a same-seed guided rerun
// that must reproduce its row and observability page byte for byte.
func ExtKV(sc Scale, seed uint64) KVResult {
	res := KVResult{Seed: seed, Layers: KVLayers, Seqs: KVSeqs, Rounds: KVDecode}
	var gRow KVRow
	var gPage []byte
	for _, f := range KVFractions {
		for _, arm := range []string{"none", "readahead", "guided"} {
			row, page := ext12Run(arm, f, seed)
			res.Rows = append(res.Rows, row)
			if arm == "guided" && f == KVFractions[0] {
				gRow, gPage = row, page
			}
		}
	}
	for _, r := range res.Rows {
		if r.Fraction == KVFractions[0] && r.Arm == "none" && r.TokPerSec > 0 {
			res.SpeedupSmallest = gRow.TokPerSec / r.TokPerSec
		}
	}
	row2, page2 := ext12Run("guided", KVFractions[0], seed)
	res.Deterministic = row2 == gRow && bytes.Equal(gPage, page2)
	res.MetricsHasKV = bytes.Contains(gPage, []byte("kvcache_"))
	res.PageBytes = len(gPage)
	return res
}

func runExt12(sc Scale) {
	fmt.Println("Extension — KV-cache tiering over the pool (ext12)")
	fmt.Printf("  [%d layers × %d seqs × %d decode rounds; prefill flushes layers through the\n",
		KVLayers, KVSeqs, KVDecode)
	fmt.Println("   batched write path; guided arm prefetches layer L+1 behind layer L's compute]")
	r := ExtKV(DefaultScale(), ChaosSeed)
	fmt.Println("  arm        cache    TTFT(µs)  TPOT(µs)  p99(µs)   tok/s     majors")
	for _, row := range r.Rows {
		fmt.Printf("  %-9s  %-6s  %s  %s  %s  %9.0f  %7d\n",
			row.Arm, FracLabel(row.Fraction), us(row.TTFT), us(row.TPOTMean),
			us(row.TPOTP99), row.TokPerSec, row.Majors)
	}
	fmt.Printf("  guided/none decode throughput at %s: %.2fx (gate ≥1.5x)\n",
		FracLabel(KVFractions[0]), r.SpeedupSmallest)
	fmt.Printf("  same-seed rerun byte-identical: %v (%d page bytes); kvcache metrics exported: %v\n",
		r.Deterministic, r.PageBytes, r.MetricsHasKV)
}

func init() {
	Register("ext12", "extension: KV-cache tiering — TTFT/TPOT across cache ratios, guided vs readahead", false, runExt12)
	RegisterJSON("ext12", func(sc Scale) any { return ExtKV(sc, ChaosSeed) })
}
