package experiments

import (
	"testing"
	"time"
)

// TestRealChaosSmoke is the in-repo ext9 gate: real memnoded processes, a
// kill -9 mid-run, and the three acceptance criteria — zero corruption
// against the shadow, p99 stall inside the deadline budget, and throughput
// back after the restart. CI runs the same harness via ddcrun -real-nodes
// with longer phases.
func TestRealChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin, err := BuildMemnoded(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const budget = 500 * time.Millisecond
	res, err := ExtRealChaos(RealChaosConfig{
		MemnodedPath: bin,
		Nodes:        3,
		Replicas:     2,
		Pages:        256,
		Workers:      4,
		Deadline:     budget,
		Baseline:     600 * time.Millisecond,
		Outage:       800 * time.Millisecond,
		Recovery:     600 * time.Millisecond,
		V1Compare:    !raceEnabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ext9: %d ops (%d reads, %d writes), %d failed, %d verified, re-replicated %d in %v",
		res.Ops, res.Reads, res.Writes, res.FailedOps, res.Verified, res.ReReplicated, res.RecoverTook)
	t.Logf("ext9: baseline %.1f MB/s, outage %.1f MB/s, recovered %.1f MB/s; stall p50=%v p99=%v max=%v",
		res.BaselineMBs, res.OutageMBs, res.RecoveredMBs, res.StallP50, res.StallP99, res.StallMax)
	if res.V1ReadMBs > 0 {
		t.Logf("ext9: v1 %.1f MB/s vs v2 pipelined %.1f MB/s (%.2fx)",
			res.V1ReadMBs, res.V2ReadMBs, res.V2ReadMBs/res.V1ReadMBs)
	}

	if res.Corruptions != 0 {
		t.Fatalf("ext9: %d corruptions against the host-side shadow", res.Corruptions)
	}
	if res.Verified == 0 || res.Ops == 0 {
		t.Fatal("ext9: harness did no work")
	}
	// The kill must actually have been felt and survived.
	if res.ReReplicated == 0 {
		t.Fatal("ext9: nothing re-replicated onto the restarted node")
	}
	// Bounded stall: p99 inside the budget plus the expiry-sweep slack, and
	// even the worst op (one full budget on the killed replica, then the
	// failover) inside two budgets.
	if limit := budget + 250*time.Millisecond; res.StallP99 > limit {
		t.Fatalf("ext9: p99 stall %v exceeds the %v budget (+slack)", res.StallP99, limit)
	}
	if limit := 2*budget + 250*time.Millisecond; res.StallMax > limit {
		t.Fatalf("ext9: max stall %v exceeds %v", res.StallMax, limit)
	}
	// Throughput must come back after the restart.
	if res.RecoveredMBs < res.BaselineMBs/4 {
		t.Fatalf("ext9: throughput did not recover: baseline %.1f MB/s, recovered %.1f MB/s",
			res.BaselineMBs, res.RecoveredMBs)
	}
	// The pipelined v2 client must beat v1 on loopback READs (skipped
	// under the race detector: the timing would measure instrumentation).
	if res.V1ReadMBs > 0 && res.V2ReadMBs <= res.V1ReadMBs {
		t.Fatalf("ext9: v2 pipelined (%.1f MB/s) not faster than v1 (%.1f MB/s)",
			res.V2ReadMBs, res.V1ReadMBs)
	}
	for _, key := range []string{"transport.sent", "transport.retries", "transport.redials"} {
		if _, ok := res.Transport[key]; !ok {
			t.Fatalf("ext9: merged transport counters missing %q", key)
		}
	}
}
