package experiments

import (
	"reflect"
	"testing"

	"dilos/internal/placement"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// tiny keeps the smoke tests fast while exercising every experiment path.
func tiny() Scale {
	return Scale{
		SeqPages:      2048,
		QuicksortN:    64 << 10,
		KMeansPoints:  12_000,
		SnappyBytes:   1 << 20,
		DataframeRows: 12_000,
		GraphScale:    10,
		RedisKeys4K:   256,
		RedisKeys64K:  32,
		RedisKeysMix:  48,
		RedisQueries:  400,
		RedisLists:    16,
		RedisListElem: 1500,
	}
}

func TestFig1Shape(t *testing.T) {
	rows := Fig1(tiny())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	avg, noRecl := rows[0], rows[1]
	if avg.Reclaim == 0 {
		t.Fatal("average case must include direct reclamation")
	}
	if noRecl.Reclaim != 0 {
		t.Fatal("no-reclamation case must not reclaim")
	}
	if avg.Total <= noRecl.Total {
		t.Fatal("reclamation must increase the average fault latency")
	}
	// Fetch should be the largest segment (§3.1: 46%).
	if avg.Fetch < avg.Exception || avg.Fetch < avg.Software {
		t.Fatal("fetch is not the dominant segment")
	}
}

func TestFig2Shape(t *testing.T) {
	rows := Fig2()
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ReadLat < rows[i-1].ReadLat {
			t.Fatal("latency not monotone in size")
		}
	}
	// The headline claim: 4 KiB ≈ 0.6 µs over 128 B.
	var l128, l4k sim.Time
	for _, r := range rows {
		if r.Size == 128 {
			l128 = r.ReadLat
		}
		if r.Size == 4096 {
			l4k = r.ReadLat
		}
	}
	if d := l4k - l128; d < 500*sim.Nanosecond || d > 700*sim.Nanosecond {
		t.Fatalf("4KiB-128B delta = %v", d)
	}
}

func TestTab1And3Shape(t *testing.T) {
	sc := tiny()
	t1 := Tab1(sc)
	// At full scale majors land on exactly 1/cluster of pages (see the
	// bench harness); the tiny smoke cache is small enough that readahead
	// is occasionally curtailed near the watermark, so allow slack here.
	if t1.Major > int64(sc.SeqPages)/2 || t1.Major < int64(sc.SeqPages)/8 {
		t.Fatalf("Fastswap majors = %d, want ≈%d (1/cluster)", t1.Major, sc.SeqPages/8)
	}
	if t1.Minor <= t1.Major {
		t.Fatalf("Fastswap minors = %d must dominate majors %d", t1.Minor, t1.Major)
	}
	rows := Tab3(sc)
	byKind := map[SystemKind]FaultCountRow{}
	for _, r := range rows {
		byKind[r.System] = r
	}
	if byKind[SysDiLOSNone].Major != int64(sc.SeqPages) {
		t.Fatal("DiLOS no-prefetch must major on every page")
	}
	if byKind[SysDiLOSRA].Minor >= byKind[SysFastswap].Minor {
		t.Fatal("DiLOS readahead must have fewer minors than Fastswap")
	}
	if byKind[SysDiLOSRA].Total >= byKind[SysFastswap].Total {
		t.Fatal("DiLOS readahead must have fewer total faults")
	}
}

func TestTab2Shape(t *testing.T) {
	rows := Tab2(tiny())
	byKind := map[SystemKind]Tab2Row{}
	for _, r := range rows {
		byKind[r.System] = r
	}
	fs, ra := byKind[SysFastswap], byKind[SysDiLOSRA]
	if ra.ReadGBs < 2.5*fs.ReadGBs {
		t.Fatalf("DiLOS readahead read %.2f not ≥2.5x Fastswap %.2f", ra.ReadGBs, fs.ReadGBs)
	}
	if fs.WriteGBs >= fs.ReadGBs {
		t.Fatalf("Fastswap write %.2f should collapse below read %.2f", fs.WriteGBs, fs.ReadGBs)
	}
	if ra.WriteGBs < 2*fs.WriteGBs {
		t.Fatal("DiLOS write advantage missing")
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(tiny())
	var fs, dl BreakdownRow
	for _, r := range rows {
		switch r.Label {
		case "Fastswap":
			fs = r
		case "DiLOS":
			dl = r
		}
	}
	if dl.Reclaim != 0 {
		t.Fatal("DiLOS reclaims on the fault path")
	}
	// Paper: DiLOS cuts fault latency by ≈49%.
	if dl.Total*3 > fs.Total*2 {
		t.Fatalf("DiLOS %v not well below Fastswap %v", dl.Total, fs.Total)
	}
}

func TestFig7aShape(t *testing.T) {
	rows := Fig7a(tiny())
	check := rows[0].Check
	for _, r := range rows {
		if r.Check != check {
			t.Fatal("quicksort results differ across systems")
		}
	}
	if best(rows, SysDiLOSRA, 0.125) >= best(rows, SysFastswap, 0.125) {
		t.Fatal("DiLOS must beat Fastswap at 12.5%")
	}
}

func TestFig9bShape(t *testing.T) {
	sc := tiny()
	rows := Fig9b(sc)
	if best(rows, SysDiLOSRA, 0.125) >= best(rows, SysFastswap, 0.125) {
		t.Fatal("DiLOS must beat Fastswap on BC at 12.5%")
	}
	check := rows[0].Check
	for _, r := range rows[1:] {
		if r.Check != check {
			t.Fatal("BC results differ across systems/fractions")
		}
	}
}

func best(rows []CompletionRow, kind SystemKind, frac float64) sim.Time {
	for _, r := range rows {
		if r.System == kind && r.Fraction == frac {
			return r.Elapsed
		}
	}
	return -1
}

func TestFig10aShape(t *testing.T) {
	rows := Fig10a(tiny())
	get := func(kind SystemKind, frac float64) RedisRow {
		for _, r := range rows {
			if r.System == kind && r.Fraction == frac {
				return r
			}
		}
		t.Fatalf("missing row %s %v", kind, frac)
		return RedisRow{}
	}
	for _, r := range rows {
		if r.Bad != 0 {
			t.Fatalf("%s@%v returned %d bad values", r.System, r.Fraction, r.Bad)
		}
	}
	if get(SysDiLOSNone, 0.125).OpsPerS <= get(SysFastswap, 0.125).OpsPerS {
		t.Fatal("DiLOS (even without prefetch) must beat Fastswap on GET at 12.5%")
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12(tiny())
	def, guided := rows[0], rows[1]
	if guided.SavedBytes == 0 {
		t.Fatal("guided paging saved nothing")
	}
	if guided.GetRxMB >= def.GetRxMB {
		t.Fatalf("guided GET traffic %.2f MB not below default %.2f MB",
			guided.GetRxMB, def.GetRxMB)
	}
	if guided.DelTxMB >= def.DelTxMB {
		t.Fatalf("guided DEL traffic %.2f MB not below default %.2f MB",
			guided.DelTxMB, def.DelTxMB)
	}
}

func TestAblationEagerEviction(t *testing.T) {
	rows := AblationEagerEviction(tiny())
	eager, lazy := rows[0], rows[1]
	if eager.WriteGBs <= lazy.WriteGBs {
		t.Fatalf("eager eviction buys nothing on writes: %.2f vs %.2f",
			eager.WriteGBs, lazy.WriteGBs)
	}
}

func TestAblationSharedQueue(t *testing.T) {
	rows := AblationSharedQueue(tiny())
	nothing, shared := rows[0], rows[1]
	if nothing.FaultP99 >= shared.FaultP99 {
		t.Fatalf("shared-nothing queues bought no tail-latency relief: %v vs %v",
			nothing.FaultP99, shared.FaultP99)
	}
}

func TestExtMultiNode(t *testing.T) {
	rows := ExtMultiNode(tiny())
	if len(rows) != 3 {
		t.Fatal("want 3 configurations")
	}
	for _, r := range rows {
		total := 0.0
		for _, gb := range r.PerLink {
			if gb == 0 {
				t.Fatalf("%d nodes: a shard saw no traffic", r.Nodes)
			}
			total += gb
		}
	}
}

func TestExtPlacement(t *testing.T) {
	rows := ExtPlacement(tiny())
	if len(rows) != len(placement.Policies()) {
		t.Fatalf("rows = %d, want one per policy", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Policy] {
			t.Fatalf("policy %q appears twice", r.Policy)
		}
		seen[r.Policy] = true
		if r.ReadGBs <= 0 {
			t.Fatalf("%s: no throughput", r.Policy)
		}
		if len(r.PerLink) != 4 {
			t.Fatalf("%s: PerLink = %v, want 4 nodes", r.Policy, r.PerLink)
		}
		total := 0.0
		for _, gb := range r.PerLink {
			total += gb
		}
		if total == 0 {
			t.Fatalf("%s: links saw no traffic", r.Policy)
		}
		// Interleaving policies must keep the links balanced on a
		// sequential sweep; blocked placement is exempt (it is the
		// deliberately skewed baseline).
		if r.Policy != "blocked" && (r.Spread == 0 || r.Spread > 2.0) {
			t.Fatalf("%s: spread %.2f, want ≤ 2.0 across links (%v)",
				r.Policy, r.Spread, r.PerLink)
		}
	}
}

func TestCollectHookSeesRuns(t *testing.T) {
	var labels []string
	Collect = func(label string, snap stats.Snapshot) {
		labels = append(labels, label)
		if _, ok := snap.Counter("dilos.major_faults"); !ok {
			t.Errorf("%s: snapshot missing dilos.major_faults", label)
		}
	}
	defer func() { Collect = nil }()
	ExtPlacement(tiny())
	if len(labels) != len(placement.Policies()) {
		t.Fatalf("collected %d snapshots (%v), want one per policy", len(labels), labels)
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(tiny())
	get := func(kind SystemKind, frac float64) CompletionRow {
		for _, r := range rows {
			if r.System == kind && r.Fraction == frac {
				return r
			}
		}
		t.Fatalf("missing %s@%v", kind, frac)
		return CompletionRow{}
	}
	// Identical analysis results across all systems and fractions.
	check := rows[0].Check
	for _, r := range rows {
		if r.Check != check {
			t.Fatalf("%s@%v produced different results", r.System, r.Fraction)
		}
	}
	// The paper's headline shapes.
	if get(SysDiLOSRA, 0.125).Elapsed >= get(SysAIFM, 0.125).Elapsed {
		t.Fatal("DiLOS must beat AIFM at 12.5% on the DataFrame")
	}
	if get(SysDiLOSRA, 1.0).Elapsed >= get(SysAIFM, 1.0).Elapsed {
		t.Fatal("AIFM must pay the deref tax at 100% local")
	}
	if get(SysDiLOSRA, 0.125).Elapsed >= get(SysFastswap, 0.125).Elapsed {
		t.Fatal("DiLOS must beat Fastswap at 12.5%")
	}
}

func TestFig7cShape(t *testing.T) {
	rows := Fig7c(tiny())
	var aifm, dilos, fs sim.Time
	for _, r := range rows {
		if r.Fraction != 0.125 {
			continue
		}
		switch r.System {
		case SysAIFM:
			aifm = r.Elapsed
		case SysDiLOSRA:
			dilos = r.Elapsed
		case SysFastswap:
			fs = r.Elapsed
		}
	}
	// Paper: AIFM wins at 12.5% on streaming compression; DiLOS within
	// ~10%; Fastswap far behind.
	if aifm > dilos {
		t.Fatalf("AIFM (%v) should win at 12.5%% vs DiLOS (%v)", aifm, dilos)
	}
	if fs <= dilos {
		t.Fatalf("Fastswap (%v) should trail DiLOS (%v)", fs, dilos)
	}
}

func TestExtThreadScaling(t *testing.T) {
	rows := ExtThreadScaling(tiny())
	if len(rows) != 3 {
		t.Fatal("want 3 thread counts")
	}
	if rows[2].Elapsed >= rows[0].Elapsed {
		t.Fatalf("4 threads (%v) not faster than 1 (%v)", rows[2].Elapsed, rows[0].Elapsed)
	}
	if rows[0].Check != rows[1].Check || rows[1].Check != rows[2].Check {
		t.Fatal("PageRank results vary with thread count")
	}
}

func TestFig7dShape(t *testing.T) {
	rows := Fig7d(tiny())
	var aifm, dilos, fs sim.Time
	for _, r := range rows {
		if r.Fraction != 0.125 {
			continue
		}
		switch r.System {
		case SysAIFM:
			aifm = r.Elapsed
		case SysDiLOSRA:
			dilos = r.Elapsed
		case SysFastswap:
			fs = r.Elapsed
		}
	}
	if aifm == 0 || dilos == 0 || fs == 0 {
		t.Fatal("missing rows")
	}
	// Decompression at 12.5%: streaming overlap favors AIFM; Fastswap
	// trails DiLOS (Figure 7(d)).
	if fs <= dilos {
		t.Fatalf("Fastswap (%v) should trail DiLOS (%v)", fs, dilos)
	}
}

func TestFig9aShape(t *testing.T) {
	rows := Fig9a(tiny())
	check := rows[0].Check
	for _, r := range rows[1:] {
		if r.Check != check {
			t.Fatal("PageRank results differ across systems/fractions")
		}
	}
	if best(rows, SysDiLOSRA, 0.125) > best(rows, SysFastswap, 0.125) {
		t.Fatal("DiLOS should not lose to Fastswap on PR at 12.5%")
	}
}

func TestFig10dAppAwareWins(t *testing.T) {
	// The guide's win needs actual paging pressure: size the lists well
	// past the cache floor (the default tiny scale fits in cache).
	sc := tiny()
	sc.RedisListElem = 6000
	sc.RedisLists = 32
	sc.RedisQueries = 800
	rows := Fig10d(sc)
	var app, bestOther float64
	for _, r := range rows {
		if r.Fraction != 0.125 {
			continue
		}
		if r.System == SysDiLOSApp {
			app = r.OpsPerS
		} else if r.OpsPerS > bestOther {
			bestOther = r.OpsPerS
		}
	}
	// §6.3's headline: the quicklist guide beats every general-purpose
	// configuration on LRANGE.
	if app <= bestOther {
		t.Fatalf("app-aware (%.0f ops/s) does not top LRANGE (best other %.0f)", app, bestOther)
	}
}

func TestExtChaosCrashRecovery(t *testing.T) {
	// ext4's acceptance bar: a replicated run through a mid-run node crash
	// completes with failover + re-replication observed and the throughput
	// recovering after the node returns.
	res := ExtChaos(tiny(), 42)
	if res.NodeFails < 1 || res.NodeRecoveries < 1 {
		t.Fatalf("breaker never cycled: fails=%d recoveries=%d", res.NodeFails, res.NodeRecoveries)
	}
	if res.DetectedAt <= res.CrashAt {
		t.Fatalf("detection (%v) not after crash (%v)", res.DetectedAt, res.CrashAt)
	}
	if res.RecoveredAt <= res.CrashUntil {
		t.Fatalf("recovery (%v) not after the window closed (%v)", res.RecoveredAt, res.CrashUntil)
	}
	if res.ReplicaFetches == 0 {
		t.Fatal("no fetch failed over to the surviving replica")
	}
	if res.ReReplicated == 0 {
		t.Fatal("recovery re-replicated no pages")
	}
	if res.InjectedFails == 0 {
		t.Fatal("the crash window injected no op failures")
	}
	if res.BaselineGBs <= 0 || res.RecoveredGBs <= 0 {
		t.Fatalf("degenerate throughput: baseline=%.3f recovered=%.3f", res.BaselineGBs, res.RecoveredGBs)
	}
	// The dip must be visible (the detection window stalls fetches on the
	// dead node) and the system must climb back to near-baseline speed.
	if res.DipGBs >= res.BaselineGBs*0.9 {
		t.Fatalf("no crash dip: worst bucket %.3f GB/s vs baseline %.3f GB/s", res.DipGBs, res.BaselineGBs)
	}
	if res.RecoveredGBs <= res.DipGBs {
		t.Fatalf("throughput never recovered: %.3f GB/s after vs %.3f at the dip", res.RecoveredGBs, res.DipGBs)
	}
	if res.RecoveredGBs < res.BaselineGBs*0.8 {
		t.Fatalf("recovered throughput %.3f GB/s far below baseline %.3f GB/s", res.RecoveredGBs, res.BaselineGBs)
	}
}

func TestExtChaosSameSeedReproduces(t *testing.T) {
	a := ExtChaos(tiny(), 1234)
	b := ExtChaos(tiny(), 1234)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	c := ExtChaos(tiny(), 99)
	if reflect.DeepEqual(a.Series, c.Series) {
		t.Fatal("different seeds produced identical timelines (suspicious)")
	}
}
