package experiments

import (
	"encoding/json"
	"sort"
	"strings"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
	"dilos/internal/tenant"
)

// This file holds ext8, the multi-tenant extension: two tenants share one
// DiLOS pool — a well-behaved victim whose hot set fits its quota plus a
// steady trickle of cold-page demand, and an adversarial aggressor whose
// working set is 8× its quota, streaming stores through a readahead window
// so it thrashes both the frame pool and the fabric. Three legs:
//
//	solo      — the victim alone on a pool sized to its quota (baseline)
//	isolated  — victim + aggressor with quotas, floors, slack, the
//	            pressure rebalancer, and a fabric token bucket capping the
//	            aggressor's bandwidth
//	control   — same pair, TenancyConfig.NoIsolation: every view spans the
//	            whole pool, no buckets — the unpartitioned behaviour
//
// The gate: the isolated victim's major-fault p99 stays within
// TenantGate× the solo baseline while the control leg exceeds it, and the
// same-seed isolated leg is byte-identical across repeats.

// TenantAggressorRate caps the aggressor's fabric bandwidth in the
// isolated leg (bytes/s of token-bucket rate) — cmd wires -tenant-rate.
// ≈8% of the 12.2 GB/s link leaves demand fetches a quiet wire.
var TenantAggressorRate = int64(1024) << 20

// TenantGate is the acceptance ratio for the isolated victim's p99.
const TenantGate = 1.5

const (
	tenantRunFor = 10 * sim.Millisecond
	// The first 3ms warm the victim's hot set (and let the aggressor reach
	// steady thrash); quantiles are taken over the remainder.
	tenantWarmup = 3 * sim.Millisecond
	// Burst credit on the aggressor's bucket: four pages. Small on purpose —
	// burst bytes are wire time a victim demand fetch can land behind, so
	// the bucket paces the aggressor near-fluid instead of admitting whole
	// readahead windows back to back.
	tenantAggrBurst = int64(16) << 10
	// Rebalance cadence for the isolated leg: fast enough to tick dozens
	// of times per run, proving the victim's floor holds under pressure.
	tenantRebalanceTick = 500 * sim.Microsecond
	tenantRebalanceStep = 8
)

// TenantResult is the ext8 outcome.
type TenantResult struct {
	// Sizing (pages / frames).
	VictimHotPages  uint64
	VictimColdPages uint64
	AggressorPages  uint64
	VictimFrames    int
	AggressorFrames int
	SlackFrames     int

	RunFor      sim.Time
	MeasureFrom sim.Time

	// Victim major-fault latency per leg over [MeasureFrom, RunFor).
	SoloP50, SoloP99 sim.Time
	SoloFaults       int
	IsoP50, IsoP99   sim.Time
	IsoFaults        int
	CtrlP50, CtrlP99 sim.Time
	CtrlFaults       int

	// The gates.
	IsoRatio    float64 // IsoP99 / SoloP99 (target ≤ Gate)
	CtrlRatio   float64 // CtrlP99 / SoloP99 (expected > Gate)
	Gate        float64
	IsoPass     bool
	CtrlExceeds bool

	// Aggressor behaviour: total major faults with and without the cap.
	AggrFaultsIso  int64
	AggrFaultsCtrl int64
	AggrRate       int64 // bucket rate applied in the isolated leg

	// Floor enforcement: the victim's reservation after a run full of
	// rebalancer ticks under an adversarial neighbour.
	VictimFloor       int
	VictimReservedEnd int

	// Deterministic: the isolated leg repeated gives a byte-identical
	// registry snapshot.
	Deterministic bool
}

// tenantSizing derives every working-set and quota size from one unit.
type tenantSizing struct {
	hot, cold, aggr       uint64 // pages
	victimQ, aggrQ, slack int    // frames
}

func tenantSizingFor(sc Scale) tenantSizing {
	// The floor matches the sizing the bucket tuning (rate, burst) is
	// calibrated against; smaller scales reuse it rather than shrinking
	// the quotas under a fixed absolute bandwidth cap.
	unit := sc.SeqPages / 16
	if unit < 1024 {
		unit = 1024
	}
	return tenantSizing{
		hot:     unit * 3 / 4, // fits the victim quota with headroom
		cold:    unit * 2,     // never cache-resident: a steady major-fault probe
		aggr:    unit * 4,     // 8× the aggressor quota — permanent thrash
		victimQ: int(unit),
		aggrQ:   int(unit / 2),
		slack:   int(unit / 8),
	}
}

type tenantLegMode int

const (
	tenantSolo tenantLegMode = iota
	tenantIso
	tenantCtrl
)

type tenantLeg struct {
	sys    *core.System
	rec    *telemetry.Recorder
	victim *core.Tenant
	aggr   *core.Tenant
	snap   []byte // registry snapshot JSON (the determinism gate)
}

func runTenantLeg(sz tenantSizing, mode tenantLegMode) tenantLeg {
	eng := sim.New()
	rec := telemetry.NewRecorder(1 << 15)

	cache := sz.victimQ
	tc := core.TenancyConfig{}
	switch mode {
	case tenantIso:
		cache = sz.victimQ + sz.aggrQ + sz.slack
		tc = core.TenancyConfig{
			SlackFrames:    sz.slack,
			RebalanceEvery: tenantRebalanceTick,
			RebalanceStep:  tenantRebalanceStep,
		}
	case tenantCtrl:
		cache = sz.victimQ + sz.aggrQ + sz.slack
		tc = core.TenancyConfig{NoIsolation: true}
	}
	sys := core.New(eng, core.Config{
		CacheFrames: cache,
		Cores:       2,
		RemoteBytes: (sz.hot+sz.cold+sz.aggr)*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		Batch:       Batch,
		Tenancy:     &tc,
		Tel:         rec,
		SampleEvery: SampleEvery,
	})

	victim, err := sys.NewTenant(core.TenantSpec{
		Name:  "victim",
		Quota: tenantQuota(sz.victimQ, 0),
	})
	if err != nil {
		panic(err)
	}
	leg := tenantLeg{sys: sys, rec: rec, victim: victim}
	if mode != tenantSolo {
		leg.aggr, err = sys.NewTenant(core.TenantSpec{
			Name:       "aggressor",
			Quota:      tenantQuota(sz.aggrQ, TenantAggressorRate),
			Prefetcher: prefetch.NewReadahead(31),
		})
		if err != nil {
			panic(err)
		}
	}
	sys.Start()

	victim.Launch("victim", 0, func(sp *core.DDCProc) {
		hotBase, err := victim.MmapDDC(sz.hot)
		if err != nil {
			panic(err)
		}
		coldBase, err := victim.MmapDDC(sz.cold)
		if err != nil {
			panic(err)
		}
		for i := uint64(0); i < sz.hot; i++ {
			sp.StoreU64(hotBase+i*core.PageSize, i)
		}
		hi, ci := uint64(0), uint64(0)
		for sp.Proc().Now() < tenantRunFor {
			// 16 hot re-touches per cold probe: the victim's fabric demand
			// stays modest (one 4 KiB fetch per ~handful of µs) so its p99
			// isolates *queueing behind the neighbour*, not self-thrash.
			for k := 0; k < 16; k++ {
				sp.LoadU64(hotBase + hi*core.PageSize)
				hi = (hi + 1) % sz.hot
			}
			sp.LoadU64(coldBase + ci*core.PageSize)
			ci = (ci + 1) % sz.cold
		}
	})
	if leg.aggr != nil {
		aggr := leg.aggr
		aggr.Launch("aggressor", 1, func(sp *core.DDCProc) {
			base, err := aggr.MmapDDC(sz.aggr)
			if err != nil {
				panic(err)
			}
			i := uint64(0)
			for sp.Proc().Now() < tenantRunFor {
				// Streaming stores through a wide readahead window: every
				// page both fetches and dirties, so the cleaner doubles the
				// aggressor's wire bytes.
				sp.StoreU64(base+i*core.PageSize, i)
				i = (i + 1) % sz.aggr
			}
		})
	}
	eng.Run()
	leg.snap, err = json.Marshal(sys.Registry().Snapshot())
	if err != nil {
		panic(err)
	}
	return leg
}

// tenantQuota builds the weight-1 quota ext8 uses: the floor pins the
// whole reservation (spare = 0), making the partition explicit.
func tenantQuota(floor int, rate int64) tenant.Quota {
	q := tenant.Quota{Weight: 1, FloorFrames: floor, FabricBytesPerSec: rate}
	if rate > 0 {
		q.FabricBurstBytes = tenantAggrBurst
	}
	return q
}

// tenantFaultQuantiles pulls the major-fault spans that started inside
// [from, to) off tracks with the given prefix ("tenant.<name>.fault/core") and
// returns p50/p99 plus the sample count.
func tenantFaultQuantiles(rec *telemetry.Recorder, prefix string, from, to sim.Time) (p50, p99 sim.Time, n int) {
	var durs []sim.Time
	for id, name := range rec.Tracks() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		for _, s := range rec.Spans(id) {
			if s.Kind == telemetry.KindMajorFault && s.Start >= from && s.Start < to {
				durs = append(durs, s.Dur())
			}
		}
	}
	if len(durs) == 0 {
		return 0, 0, 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	q := func(p float64) sim.Time {
		return durs[int(p*float64(len(durs)-1))]
	}
	return q(0.50), q(0.99), len(durs)
}

// ExtTenant runs ext8: solo baseline, isolated pair, unpartitioned
// control, plus a repeat of the isolated leg for the byte-identity gate.
func ExtTenant(sc Scale) TenantResult {
	sz := tenantSizingFor(sc)

	solo := runTenantLeg(sz, tenantSolo)
	collect("ext8/solo", solo.sys)
	iso := runTenantLeg(sz, tenantIso)
	collect("ext8/isolated", iso.sys)
	ctrl := runTenantLeg(sz, tenantCtrl)
	collect("ext8/control", ctrl.sys)
	rerun := runTenantLeg(sz, tenantIso)

	res := TenantResult{
		VictimHotPages:  sz.hot,
		VictimColdPages: sz.cold,
		AggressorPages:  sz.aggr,
		VictimFrames:    sz.victimQ,
		AggressorFrames: sz.aggrQ,
		SlackFrames:     sz.slack,
		RunFor:          tenantRunFor,
		MeasureFrom:     tenantWarmup,
		Gate:            TenantGate,
		AggrRate:        TenantAggressorRate,
		Deterministic:   string(iso.snap) == string(rerun.snap),
	}
	const victimTracks = "tenant.victim.fault/core"
	res.SoloP50, res.SoloP99, res.SoloFaults = tenantFaultQuantiles(solo.rec, victimTracks, tenantWarmup, tenantRunFor)
	res.IsoP50, res.IsoP99, res.IsoFaults = tenantFaultQuantiles(iso.rec, victimTracks, tenantWarmup, tenantRunFor)
	res.CtrlP50, res.CtrlP99, res.CtrlFaults = tenantFaultQuantiles(ctrl.rec, victimTracks, tenantWarmup, tenantRunFor)
	if res.SoloP99 > 0 {
		res.IsoRatio = float64(res.IsoP99) / float64(res.SoloP99)
		res.CtrlRatio = float64(res.CtrlP99) / float64(res.SoloP99)
	}
	res.IsoPass = res.IsoRatio > 0 && res.IsoRatio <= res.Gate
	res.CtrlExceeds = res.CtrlRatio > res.Gate
	res.AggrFaultsIso = iso.aggr.Sys.MajorFaults.N
	res.AggrFaultsCtrl = ctrl.aggr.Sys.MajorFaults.N
	res.VictimFloor = iso.victim.Quota.FloorFrames
	res.VictimReservedEnd = iso.victim.View().Reserved()
	return res
}
