package experiments

import "testing"

// Ext6's headline shapes, guarded at a small scale: Fastswap pays a real
// reclaim stage under paging pressure while DiLOS's is structurally zero,
// and DiLOS's total fault latency beats Fastswap's.
func TestExtAnatomySmoke(t *testing.T) {
	sc := DefaultScale()
	sc.SeqPages = 4096 // runAnatomy sweeps SeqPages/4 = 1024 pages
	rows := ExtAnatomy(sc)
	if len(rows) != len(ext6Fractions)*3 {
		t.Fatalf("got %d rows, want %d", len(rows), len(ext6Fractions)*3)
	}
	byKey := map[SystemKind]map[float64]Ext6Row{}
	for _, r := range rows {
		if r.Anatomy.Faults == 0 {
			t.Fatalf("%s@%v recorded no faults", r.System, r.Fraction)
		}
		if r.Anatomy.Dropped != 0 {
			t.Fatalf("%s@%v dropped %d fault spans", r.System, r.Fraction, r.Anatomy.Dropped)
		}
		if byKey[r.System] == nil {
			byKey[r.System] = map[float64]Ext6Row{}
		}
		byKey[r.System][r.Fraction] = r
	}
	fs := byKey[SysFastswap][0.125].Anatomy
	dl := byKey[SysDiLOSNone][0.125].Anatomy
	if fs.Stage("reclaim").MeanNs == 0 {
		t.Error("Fastswap at 12.5% cache shows no direct-reclaim stage")
	}
	for _, kind := range []SystemKind{SysDiLOSNone, SysDiLOSRA} {
		for frac, r := range byKey[kind] {
			if got := r.Anatomy.Stage("reclaim").MeanNs; got != 0 {
				t.Errorf("%s@%v has reclaim stage %dns; DiLOS never reclaims on the fault path", kind, frac, got)
			}
		}
	}
	if dl.MeanNs >= fs.MeanNs {
		t.Errorf("DiLOS mean fault %dns not below Fastswap %dns", dl.MeanNs, fs.MeanNs)
	}
}
