// Human-readable renderers: one print function per artifact, each
// registered as a registry Entry so cmd/dilosbench stays a thin flag
// parser. Formats mirror the paper's tables, with the published values
// quoted alongside. The single init below registers every classic
// artifact in the paper's order; extensions self-register here too and
// sort by number in Entries().
package experiments

import (
	"fmt"
	"sort"

	"dilos/internal/sim"
	"dilos/internal/stats"
)

func init() {
	reg := func(id, desc string, run func(sc Scale)) { Register(id, desc, false, run) }
	reg("fig1", "Fastswap fault-handler latency breakdown", runFig1)
	reg("fig2", "RDMA latency vs object size", func(Scale) { runFig2() })
	reg("tab1", "fault counts, sequential read on Fastswap", runTab1)
	reg("tab2", "sequential read/write throughput (GB/s)", runTab2)
	reg("fig6", "fault latency breakdown, DiLOS vs Fastswap", runFig6)
	reg("tab3", "fault counts, sequential read, all systems", runTab3)
	reg("fig7a", "quicksort completion time", wrapCompletion("Figure 7(a) — quicksort", Fig7a, "s"))
	reg("fig7b", "k-means completion time", wrapCompletion("Figure 7(b) — k-means", Fig7b, "s"))
	reg("fig7c", "snappy compression completion time", wrapCompletion("Figure 7(c) — compression", Fig7c, "ms"))
	reg("fig7d", "snappy decompression completion time", wrapCompletion("Figure 7(d) — decompression", Fig7d, "ms"))
	reg("fig8", "DataFrame NYC-taxi completion time", wrapCompletion("Figure 8 — DataFrame (NYC taxi)", Fig8, "ms"))
	reg("fig9a", "GAPBS PageRank, 4 threads", wrapCompletion("Figure 9(a) — PageRank", Fig9a, "ms"))
	reg("fig9b", "GAPBS betweenness centrality, 4 threads", wrapCompletion("Figure 9(b) — betweenness centrality", Fig9b, "ms"))
	reg("fig10a", "Redis GET throughput, 4 KiB values", wrapRedis("Figure 10(a) — GET 4KiB", Fig10a))
	reg("fig10b", "Redis GET throughput, 64 KiB values", wrapRedis("Figure 10(b) — GET 64KiB", Fig10b))
	reg("fig10c", "Redis GET throughput, mixed sizes", wrapRedis("Figure 10(c) — GET mixed", Fig10c))
	reg("fig10d", "Redis LRANGE_100 throughput", wrapRedis("Figure 10(d) — LRANGE_100", Fig10d))
	reg("tab4", "Redis tail latency, GET(mixed) + LRANGE", runTab4)
	reg("fig12", "bandwidth with guided paging, DEL + GET", runFig12)
	reg("abl1", "ablation: eager vs on-demand reclamation", runAbl1)
	reg("abl2", "ablation: shared-nothing vs shared queues", runAbl2)
	reg("ext1", "extension: sharding across 1/2/4 memory nodes", runExt1)
	reg("ext2", "extension: PageRank thread scaling on DiLOS", runExt2)
	reg("ext3", "extension: placement policies across 4 memory nodes", runExt3)
	reg("ext4", "extension: chaos — node crash, failover, recovery", runExt4)
	reg("ext5", "extension: doorbell-batched vs per-op submission", runExt5)
	reg("ext6", "extension: per-fault latency anatomy from the flight recorder", runExt6)
	reg("ext7", "extension: elastic pool — live drain + migration under load", runExt7)
	reg("ext8", "extension: multi-tenant pool — noisy neighbour vs QoS quotas", runExt8)
	Register("ext10", "extension: per-core fault-path scaling — sharded vs shared manager", true, runExt10)
	reg("ext11", "extension: always-on observability plane — overhead + burn-rate detection", runExt11)

	RegisterJSON("fig1", func(sc Scale) any { return Fig1(sc) })
	RegisterJSON("fig2", func(Scale) any { return Fig2() })
	RegisterJSON("tab1", func(sc Scale) any { return Tab1(sc) })
	RegisterJSON("tab2", func(sc Scale) any { return Tab2(sc) })
	RegisterJSON("fig6", func(sc Scale) any { return Fig6(sc) })
	RegisterJSON("tab3", func(sc Scale) any { return Tab3(sc) })
	RegisterJSON("fig7a", func(sc Scale) any { return Fig7a(sc) })
	RegisterJSON("fig7b", func(sc Scale) any { return Fig7b(sc) })
	RegisterJSON("fig7c", func(sc Scale) any { return Fig7c(sc) })
	RegisterJSON("fig7d", func(sc Scale) any { return Fig7d(sc) })
	RegisterJSON("fig8", func(sc Scale) any { return Fig8(sc) })
	RegisterJSON("fig9a", func(sc Scale) any { return Fig9a(sc) })
	RegisterJSON("fig9b", func(sc Scale) any { return Fig9b(sc) })
	RegisterJSON("fig10a", func(sc Scale) any { return Fig10a(sc) })
	RegisterJSON("fig10b", func(sc Scale) any { return Fig10b(sc) })
	RegisterJSON("fig10c", func(sc Scale) any { return Fig10c(sc) })
	RegisterJSON("fig10d", func(sc Scale) any { return Fig10d(sc) })
	RegisterJSON("tab4", func(sc Scale) any { return Tab4(sc) })
	RegisterJSON("fig12", func(sc Scale) any { return Fig12(sc) })
	RegisterJSON("abl1", func(sc Scale) any { return AblationEagerEviction(sc) })
	RegisterJSON("abl2", func(sc Scale) any { return AblationSharedQueue(sc) })
	RegisterJSON("ext1", func(sc Scale) any { return ExtMultiNode(sc) })
	RegisterJSON("ext2", func(sc Scale) any { return ExtThreadScaling(sc) })
	RegisterJSON("ext3", func(sc Scale) any { return ExtPlacement(sc) })
	RegisterJSON("ext4", func(sc Scale) any { return ExtChaos(sc, ChaosSeed) })
	RegisterJSON("ext5", func(sc Scale) any { return ExtBatch(sc) })
	RegisterJSON("ext6", func(sc Scale) any { return ExtAnatomy(sc) })
	RegisterJSON("ext7", func(sc Scale) any { return ExtElastic(sc, ChaosSeed) })
	RegisterJSON("ext8", func(sc Scale) any { return ExtTenant(sc) })
	RegisterJSON("ext10", func(sc Scale) any { return ExtScaling(sc) })
	RegisterJSON("ext11", func(sc Scale) any { return ExtObs(sc, ChaosSeed) })
}

func us(t sim.Time) string { return fmt.Sprintf("%6.2f", t.Micros()) }

func runFig1(sc Scale) {
	fmt.Println("Figure 1 — Fastswap page fault handler latency breakdown (µs)")
	fmt.Println("  [paper: average ≈6.2µs total with 46% fetch, 9% exception, 29% reclaim]")
	printBreakdown(Fig1(sc))
}

func runFig6(sc Scale) {
	fmt.Println("Figure 6 — fault latency breakdown, DiLOS vs Fastswap (µs)")
	fmt.Println("  [paper: DiLOS cuts fault latency ≈49%; DiLOS reclaim = 0]")
	printBreakdown(Fig6(sc))
}

func printBreakdown(rows []BreakdownRow) {
	fmt.Printf("  %-22s %9s %9s %9s %9s %9s %9s\n",
		"", "exception", "software", "fetch", "map", "reclaim", "total")
	for _, r := range rows {
		fmt.Printf("  %-22s %9s %9s %9s %9s %9s %9s\n",
			r.Label, us(r.Exception), us(r.Software), us(r.Fetch), us(r.Map), us(r.Reclaim), us(r.Total))
	}
}

func runFig2() {
	fmt.Println("Figure 2 — one-sided RDMA latency (µs) per object size")
	fmt.Println("  [paper: 4KiB costs only ≈0.6µs more than 128B]")
	fmt.Printf("  %8s %10s %10s\n", "size", "read", "write")
	for _, r := range Fig2() {
		fmt.Printf("  %8d %10s %10s\n", r.Size, us(r.ReadLat), us(r.WriteLat))
	}
}

func runTab1(sc Scale) {
	fmt.Println("Table 1 — page faults during sequential read on Fastswap")
	fmt.Printf("  [paper: 655,737 major (12.5%%) / 4,587,164 minor (87.5%%) on 20GB]\n")
	r := Tab1(sc)
	printFaultRows([]FaultCountRow{r})
}

func runTab3(sc Scale) {
	fmt.Println("Table 3 — page faults during sequential read")
	fmt.Println("  [paper: DiLOS-readahead ≈25% fewer minor faults than Fastswap]")
	printFaultRows(Tab3(sc))
}

func printFaultRows(rows []FaultCountRow) {
	fmt.Printf("  %-22s %10s %10s %10s %8s\n", "", "major", "minor", "total", "major%")
	for _, r := range rows {
		fmt.Printf("  %-22s %10d %10d %10d %7.1f%%\n",
			r.System, r.Major, r.Minor, r.Total, 100*float64(r.Major)/float64(r.Total))
	}
}

func runTab2(sc Scale) {
	fmt.Println("Table 2 — sequential read/write throughput (GB/s)")
	fmt.Println("  [paper: Fastswap 0.98/0.49; DiLOS none 1.24/1.14; readahead 3.74/3.49; trend 3.73/3.49]")
	fmt.Printf("  %-22s %8s %8s\n", "", "read", "write")
	for _, r := range Tab2(sc) {
		fmt.Printf("  %-22s %8.2f %8.2f\n", r.System, r.ReadGBs, r.WriteGBs)
	}
}

func wrapCompletion(title string, fn func(Scale) []CompletionRow, unit string) func(Scale) {
	return func(sc Scale) {
		fmt.Println(title + " — completion time (lower is better)")
		rows := fn(sc)
		printCompletion(rows, unit)
	}
}

func printCompletion(rows []CompletionRow, unit string) {
	// Group: system → fraction → time.
	systems := []SystemKind{}
	seen := map[SystemKind]bool{}
	fracs := []float64{}
	seenF := map[float64]bool{}
	for _, r := range rows {
		if !seen[r.System] {
			seen[r.System] = true
			systems = append(systems, r.System)
		}
		if !seenF[r.Fraction] {
			seenF[r.Fraction] = true
			fracs = append(fracs, r.Fraction)
		}
	}
	sort.Float64s(fracs)
	fmt.Printf("  %-22s", "local memory:")
	for _, f := range fracs {
		fmt.Printf(" %9s", FracLabel(f))
	}
	fmt.Println()
	for _, s := range systems {
		fmt.Printf("  %-22s", s)
		for _, f := range fracs {
			for _, r := range rows {
				if r.System == s && r.Fraction == f {
					switch unit {
					case "s":
						fmt.Printf(" %9.3f", r.Elapsed.Seconds())
					default:
						fmt.Printf(" %9.2f", float64(r.Elapsed)/1e6)
					}
				}
			}
		}
		fmt.Printf("  (%s)\n", unit)
	}
}

func wrapRedis(title string, fn func(Scale) []RedisRow) func(Scale) {
	return func(sc Scale) {
		fmt.Println(title + " — throughput (ops/s, higher is better)")
		rows := fn(sc)
		systems := []SystemKind{}
		seen := map[SystemKind]bool{}
		fracs := []float64{}
		seenF := map[float64]bool{}
		for _, r := range rows {
			if !seen[r.System] {
				seen[r.System] = true
				systems = append(systems, r.System)
			}
			if !seenF[r.Fraction] {
				seenF[r.Fraction] = true
				fracs = append(fracs, r.Fraction)
			}
		}
		sort.Float64s(fracs)
		fmt.Printf("  %-22s", "local memory:")
		for _, f := range fracs {
			fmt.Printf(" %10s", FracLabel(f))
		}
		fmt.Println()
		for _, s := range systems {
			fmt.Printf("  %-22s", s)
			for _, f := range fracs {
				for _, r := range rows {
					if r.System == s && r.Fraction == f {
						fmt.Printf(" %10.0f", r.OpsPerS)
					}
				}
			}
			fmt.Println()
		}
	}
}

func runTab4(sc Scale) {
	fmt.Println("Table 4 — tail latency at 12.5% local memory (µs)")
	fmt.Println("  [paper (ms, 20GB sets): Fastswap GET 10.0/11.0, LRANGE 25.8/34.3;")
	fmt.Println("   DiLOS app-aware GET 3.0/4.0, LRANGE 14.6/18.4]")
	fmt.Printf("  %-22s %12s %12s %12s %12s %12s %12s\n",
		"", "GET p99", "GET p99.9", "LRANGE p99", "LRANGE p99.9", "major p99", "minor p99")
	for _, r := range Tab4(sc) {
		fmt.Printf("  %-22s %12s %12s %12s %12s %12s %12s\n",
			r.System, us(r.GetP99), us(r.GetP999), us(r.LRangeP99), us(r.LRangeP999),
			us(r.MajorFaultP99), us(r.MinorFaultP99))
	}
}

func runFig12(sc Scale) {
	fmt.Println("Figure 12 — network traffic with guided paging (DEL churn, then GET sweep)")
	fmt.Println("  [paper: guided paging saves 12% on DEL, 29% on GET]")
	rows := Fig12(sc)
	fmt.Printf("  %-22s %12s %12s %14s\n", "", "DEL tx (MB)", "GET rx (MB)", "saved (bytes)")
	for _, r := range rows {
		label := "default paging"
		if r.Guided {
			label = "guided paging"
		}
		fmt.Printf("  %-22s %12.2f %12.2f %14d\n", label, r.DelTxMB, r.GetRxMB, r.SavedBytes)
	}
	def, g := rows[0], rows[1]
	fmt.Printf("  reduction: DEL %.0f%%, GET %.0f%%\n",
		100*(1-g.DelTxMB/def.DelTxMB), 100*(1-g.GetRxMB/def.GetRxMB))
	fmt.Println("  rx bandwidth over time (default vs guided):")
	fmt.Printf("    default %s\n", sparkline(def.RxSeries, 64))
	fmt.Printf("    guided  %s\n", sparkline(g.RxSeries, 64))
}

// sparkline renders a bandwidth series as unicode blocks, resampled to
// `width` buckets and normalized across the series.
func sparkline(pts []stats.BandwidthPoint, width int) string {
	if len(pts) == 0 {
		return "(empty)"
	}
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	resampled := make([]float64, width)
	for i, p := range pts {
		resampled[i*width/len(pts)] += p.BytesPerSec
	}
	max := 0.0
	for _, v := range resampled {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return "(idle)"
	}
	out := make([]rune, width)
	for i, v := range resampled {
		idx := int(v / max * float64(len(blocks)-1))
		out[i] = blocks[idx]
	}
	return string(out)
}

func runAbl1(sc Scale) {
	fmt.Println("Ablation — eager background reclamation (§4.4) vs on-demand")
	fmt.Printf("  %-32s %8s %8s %12s\n", "", "read", "write", "alloc waits")
	for _, r := range AblationEagerEviction(sc) {
		fmt.Printf("  %-32s %8.2f %8.2f %12d\n", r.Label, r.ReadGBs, r.WriteGBs, r.AllocWait)
	}
}

func runAbl2(sc Scale) {
	fmt.Println("Ablation — shared-nothing per-module queues (§4.5) vs one queue per core")
	fmt.Printf("  %-32s %8s %14s\n", "", "write", "fault p99")
	for _, r := range AblationSharedQueue(sc) {
		fmt.Printf("  %-32s %8.2f %14s\n", r.Label, r.WriteGBs, us(r.FaultP99))
	}
}

func runExt2(sc Scale) {
	fmt.Println("Extension — PageRank thread scaling on DiLOS, 12.5% local memory")
	fmt.Printf("  %-10s %12s\n", "threads", "time (ms)")
	for _, r := range ExtThreadScaling(sc) {
		fmt.Printf("  %-10d %12.2f\n", r.Workers, float64(r.Elapsed)/1e6)
	}
}

func runExt1(sc Scale) {
	fmt.Println("Extension — page-striped sharding across memory nodes (§5.1 future work)")
	fmt.Printf("  %-10s %10s   %s\n", "nodes", "read GB/s", "RX GB per node")
	for _, r := range ExtMultiNode(sc) {
		fmt.Printf("  %-10d %10.2f   %v\n", r.Nodes, r.ReadGBs, r.PerLink)
	}
}

func runExt3(sc Scale) {
	fmt.Println("Extension — placement policies, sequential read over 4 memory nodes")
	fmt.Printf("  %-10s %10s %8s   %s\n", "policy", "read GB/s", "spread", "RX GB per node")
	for _, r := range ExtPlacement(sc) {
		fmt.Printf("  %-10s %10.2f %8.2f   %v\n", r.Policy, r.ReadGBs, r.Spread, r.PerLink)
	}
}

func runExt4(sc Scale) {
	fmt.Println("Extension — chaos: replicated DiLOS through a memory-node crash")
	fmt.Printf("  [seed %d; node 1 down %.0f–%.0fms; Replicas: 2]\n",
		ChaosSeed, ExtChaosCrashAt().Seconds()*1e3, ExtChaosCrashUntil().Seconds()*1e3)
	r := ExtChaos(sc, ChaosSeed)
	fmt.Printf("  %d pages over a %.0fms run\n", r.Pages, r.RunFor.Seconds()*1e3)
	if r.RecoveredAt == 0 {
		fmt.Printf("  detected %.3fms after crash; recovery did not complete in the run\n",
			(r.DetectedAt-r.CrashAt).Seconds()*1e3)
	} else {
		fmt.Printf("  detected %.3fms after crash; recovered %.3fms after the node returned\n",
			(r.DetectedAt-r.CrashAt).Seconds()*1e3, (r.RecoveredAt-r.CrashUntil).Seconds()*1e3)
	}
	fmt.Printf("  %-12s %-12s %-12s %-12s\n", "baseline", "outage avg", "outage dip", "recovered")
	fmt.Printf("  %-12.2f %-12.2f %-12.2f %-12.2f  (GB/s touched)\n",
		r.BaselineGBs, r.OutageGBs, r.DipGBs, r.RecoveredGBs)
	fmt.Printf("  injected fails %d, retries %d (timeouts %d, gave up %d)\n",
		r.InjectedFails, r.Retries, r.Timeouts, r.GaveUp)
	fmt.Printf("  replica fetches %d, failed write-backs %d, re-replicated pages %d\n",
		r.ReplicaFetches, r.WriteFails, r.ReReplicated)
	fmt.Printf("  breaker: %d trip(s), %d recovery(ies)\n", r.NodeFails, r.NodeRecoveries)
	fmt.Println("  throughput over time (1ms buckets):")
	fmt.Printf("    %s\n", floatSparkline(r.Series))
}

func runExt5(sc Scale) {
	fmt.Println("Extension — doorbell-batched I/O pipeline (ext5): per-op vs batched submission")
	fmt.Println("  [12.5% local cache; batched = one doorbell per prefetch window / cleaner")
	fmt.Println("   node-batch, contiguous remote offsets coalesced into ≤3-segment vectors]")
	rows := ExtBatch(sc)
	fmt.Printf("  %-22s %-8s %-34s %9s %7s %9s\n",
		"workload", "mode", "result", "doorbells", "ops/db", "coalesced")
	var base BatchRow
	for _, r := range rows {
		var result string
		var cur, ref float64
		switch {
		case r.ReadGBs > 0:
			result = fmt.Sprintf("%.2f GB/s", r.ReadGBs)
			cur, ref = r.ReadGBs, base.ReadGBs
		case r.WriteGBs > 0:
			result = fmt.Sprintf("%.2f GB/s (wb %.2f GB/s)", r.WriteGBs, r.CleanGBs)
			cur, ref = r.WriteGBs, base.WriteGBs
		case r.OpsPerS > 0:
			result = fmt.Sprintf("%.1f kops/s", r.OpsPerS/1e3)
			cur, ref = r.OpsPerS, base.OpsPerS
		default:
			result = fmt.Sprintf("%.2f ms", r.Elapsed.Seconds()*1e3)
			cur, ref = 1/r.Elapsed.Seconds(), 1/base.Elapsed.Seconds()
		}
		mode := "per-op"
		if r.Batched {
			mode = "batched"
			if ref > 0 {
				result += fmt.Sprintf("  %+.1f%%", (cur/ref-1)*100)
			}
		} else {
			base = r
		}
		fmt.Printf("  %-22s %-8s %-34s %9d %7.1f %9d\n",
			r.Workload, mode, result, r.Doorbells, r.MeanBatch, r.Coalesced)
	}
	fmt.Println("  (paper has no batched variant; the per-op rows are the §6 baseline shapes)")
}

func runExt6(sc Scale) {
	fmt.Println("Extension — per-fault latency anatomy from the flight recorder (µs)")
	fmt.Println("  [sequential write+read sweep; major faults only; stage means sum to the")
	fmt.Println("   total mean. DiLOS never reclaims on the fault path; Fastswap's direct")
	fmt.Println("   reclamation grows as the cache shrinks]")
	rows := ExtAnatomy(sc)
	stages := []string{"exception", "lookup", "reclaim", "issue", "guide", "wait", "map"}
	lastFrac := -1.0
	for _, r := range rows {
		if r.Fraction != lastFrac {
			lastFrac = r.Fraction
			fmt.Printf("  local memory %s:\n", FracLabel(r.Fraction))
			fmt.Printf("    %-22s %-4s", "system", "")
			for _, st := range stages {
				fmt.Printf(" %9s", st)
			}
			fmt.Printf(" %9s %8s\n", "total", "faults")
		}
		a := r.Anatomy
		fmt.Printf("    %-22s %-4s", r.System, "mean")
		for _, st := range stages {
			fmt.Printf(" %9.2f", float64(a.Stage(st).MeanNs)/1e3)
		}
		fmt.Printf(" %9.2f %8d\n", float64(a.MeanNs)/1e3, a.Faults)
		fmt.Printf("    %-22s %-4s", "", "p99")
		for _, st := range stages {
			fmt.Printf(" %9.2f", float64(a.Stage(st).P99Ns)/1e3)
		}
		fmt.Printf(" %9.2f\n", float64(a.P99Ns)/1e3)
	}
}

func runExt7(sc Scale) {
	fmt.Println("Extension — elastic pool: drain a memory node under load (ext7)")
	fmt.Printf("  [3 nodes, Replicas: 2, 12.5%% local cache; node %d drains at 3ms;\n",
		MigrateDrainNode)
	fmt.Println("   chaos leg crashes the draining node mid-copy (seed -chaos-seed)]")
	r := ExtElastic(sc, ChaosSeed)
	fmt.Printf("  %d pages over a %.0fms run\n", r.Pages, r.RunFor.Seconds()*1e3)
	if r.DrainDoneAt == 0 {
		fmt.Println("  drain did not complete in the run")
	} else {
		fmt.Printf("  drain completed in %.2fms: %d pages moved (%d copy restarts, %d stranded retries, %d forwarded)\n",
			(r.DrainDoneAt-r.DrainAt).Seconds()*1e3, r.PagesMoved, r.CopyRestarts, r.Stranded, r.Forwarded)
	}
	fmt.Printf("  %-10s %12s %12s %10s\n", "phase", "fault p50", "fault p99", "GB/s")
	fmt.Printf("  %-10s %12s %12s %10.2f\n", "baseline", us(r.BaselineP50), us(r.BaselineP99), r.BaselineGBs)
	fmt.Printf("  %-10s %12s %12s %10.2f\n", "drain", us(r.DrainP50), us(r.DrainP99), r.DrainGBs)
	fmt.Printf("  %-10s %12s %12s %10.2f\n", "after", "", us(r.AfterP99), r.AfterGBs)
	fmt.Printf("  drain p99 = %.2fx baseline (target ≤ 2x); corruptions: %d (must be 0)\n",
		r.P99Ratio, r.Corruptions)
	if r.ChaosDrainDoneAt == 0 {
		fmt.Printf("  chaos leg: drain pending at run end (node crashed mid-copy; %d breaker trips)\n",
			r.ChaosNodeFails)
	} else {
		fmt.Printf("  chaos leg: crash mid-copy, drain still done at %.2fms (%d moved, %d stranded retries, %d breaker trips)\n",
			r.ChaosDrainDoneAt.Seconds()*1e3, r.ChaosPagesMoved, r.ChaosStranded, r.ChaosNodeFails)
	}
	fmt.Printf("  chaos leg corruptions: %d (must be 0)\n", r.ChaosCorruptions)
	fmt.Println("  throughput over time (1ms buckets):")
	fmt.Printf("    %s\n", floatSparkline(r.Series))
}

func runExt8(sc Scale) {
	fmt.Println("Extension — multi-tenant pool: noisy neighbour vs QoS quotas (ext8)")
	fmt.Printf("  [victim hot set fits its quota; aggressor streams 8x its quota;\n")
	fmt.Printf("   isolated leg caps the aggressor at %d MB/s of fabric]\n",
		TenantAggressorRate>>20)
	r := ExtTenant(sc)
	fmt.Printf("  victim %d hot + %d cold pages on %d frames; aggressor %d pages on %d frames (+%d slack)\n",
		r.VictimHotPages, r.VictimColdPages, r.VictimFrames,
		r.AggressorPages, r.AggressorFrames, r.SlackFrames)
	fmt.Printf("  %-12s %12s %12s %8s %8s\n", "leg", "victim p50", "victim p99", "faults", "ratio")
	fmt.Printf("  %-12s %12s %12s %8d %8s\n", "solo", us(r.SoloP50), us(r.SoloP99), r.SoloFaults, "1.00")
	fmt.Printf("  %-12s %12s %12s %8d %8.2f\n", "isolated", us(r.IsoP50), us(r.IsoP99), r.IsoFaults, r.IsoRatio)
	fmt.Printf("  %-12s %12s %12s %8d %8.2f\n", "control", us(r.CtrlP50), us(r.CtrlP99), r.CtrlFaults, r.CtrlRatio)
	verdict := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	fmt.Printf("  gate: isolated <= %.1fx solo: %s; unpartitioned control > gate: %s\n",
		r.Gate, verdict(r.IsoPass), verdict(r.CtrlExceeds))
	fmt.Printf("  aggressor majors: %d capped vs %d uncapped; victim floor %d, reserved %d at end\n",
		r.AggrFaultsIso, r.AggrFaultsCtrl, r.VictimFloor, r.VictimReservedEnd)
	fmt.Printf("  repeat isolated leg byte-identical: %v\n", r.Deterministic)
}

func runExt10(sc Scale) {
	fmt.Println("Extension — per-core fault-path scaling: sharded vs shared manager (ext10)")
	fmt.Println("  [weak scaling: each core random-writes its own partition at 25% local")
	fmt.Println("   cache, re-dirtying a hot window every iteration; shared = one wide lock")
	fmt.Println("   across every daemon sweep and fault transition, sharded = Shards=cores]")
	r := ExtScaling(sc)
	fmt.Printf("  %-6s %14s %12s | %14s %12s\n",
		"cores", "shared flt/s", "shared p99", "sharded flt/s", "sharded p99")
	for _, row := range r.Rows {
		fmt.Printf("  %-6d %14.0f %12v | %14.0f %12v\n",
			row.Cores, row.SharedRate, row.SharedP99, row.ShardedRate, row.ShardedP99)
	}
	fmt.Printf("  1->4 core fault-throughput speedup: shared %.2fx, sharded %.2fx\n",
		r.SharedSpeedup, r.ShardedSpeedup)
}

func runExt11(sc Scale) {
	fmt.Println("Extension — always-on observability plane: overhead + detection (ext11)")
	fmt.Printf("  [tail storm ×30 on 60%% of ops from %.1fms; SLO budget 25µs, target 99%%,\n",
		Ext11TailAt().Seconds()*1e3)
	fmt.Printf("   burn-rate rule 500µs/100µs ×8; detection budget %.0fµs]\n",
		Ext11DetectBudget().Micros())
	r := ExtObs(sc, ChaosSeed)
	fmt.Printf("  seq read 12.5%%: plane off %.2f GB/s, plane on %.2f GB/s (virtual-time delta %+d ns)\n",
		r.OffGBs, r.OnGBs, int64(r.OnElapsed-r.OffElapsed))
	fmt.Printf("  same-seed pages byte-identical: %v (%d bytes rendered, %d journal events, %d spans sampled out)\n",
		r.Deterministic, r.PageBytes, r.JournalEvents, r.SampledOut)
	if r.Detected {
		fmt.Printf("  storm: %d tails injected; alert raised %.0fµs after onset (%d raise edges)\n",
			r.TailsInjected, r.DetectLatency.Micros(), r.StormRaised)
	} else {
		fmt.Println("  storm: alert never fired (FAIL)")
	}
	fmt.Printf("  clean legs raised %d alerts (must be 0)\n", r.CleanAlerts)
}

// floatSparkline renders a plain float series as unicode blocks.
func floatSparkline(vals []float64) string {
	if len(vals) == 0 {
		return "(empty)"
	}
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return "(idle)"
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		out[i] = blocks[int(v/max*float64(len(blocks)-1))]
	}
	return string(out)
}
