package experiments

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/pagemgr"
	"dilos/internal/sim"
)

// ext10 — per-core fault-path scaling (the sharded page manager vs the
// shared-structure baseline). Each leg runs the same weak-scaling workload:
// every core random-writes its own partition of the disaggregated region at
// a 25% cache ratio, so per-core fault demand is constant and ideal scaling
// doubles aggregate fault throughput with the core count. The "sharded" arm
// is the production configuration (Shards = cores: per-core LRU shards,
// per-shard cleaner/reclaimer pairs, CAS transitions); the "shared" arm
// models the coarse design the sharding replaces (Shards = 1 + WideLocks:
// one manager-wide lock held across daemon sweeps and every fault-path
// transition). Both arms charge the same TagCAS cost — the lock is the only
// difference.

// ScalingRow is one core count's measurement across both arms.
type ScalingRow struct {
	Cores          int
	SharedFaults   int64
	ShardedFaults  int64
	SharedElapsed  sim.Time
	ShardedElapsed sim.Time
	SharedRate     float64 // faults per second
	ShardedRate    float64
	SharedP99      sim.Time
	ShardedP99     sim.Time
}

// ScalingResult is the full ext10 artifact plus the headline speedups the
// acceptance gates read (aggregate fault throughput at 4 cores over 1).
type ScalingResult struct {
	Rows           []ScalingRow
	SharedSpeedup  float64
	ShardedSpeedup float64
}

// ScalingCores are the core counts ext10 sweeps.
var ScalingCores = []int{1, 2, 4, 8}

// Each core keeps a hot window of scalingHotPages resident pages at the
// start of its partition and re-dirties scalingHotStride of them per
// iteration, so write-back pressure scales with the core count.
const (
	scalingHotPages  = 32
	scalingHotStride = 32
)

// scalingPartPages sizes one core's partition from the Scale knob.
func scalingPartPages(sc Scale) uint64 {
	pp := sc.SeqPages / 4
	if pp < 256 {
		pp = 256
	}
	return pp
}

// runScalingLeg runs one (cores, arm) cell and returns the aggregate major
// faults, the elapsed virtual time (slowest core), and the fault p99.
func runScalingLeg(sc Scale, cores int, sharded bool) (int64, sim.Time, sim.Time) {
	partPages := scalingPartPages(sc)
	ws := partPages * uint64(cores)
	cfg := core.Config{
		CacheFrames: frames(ws, 0.25),
		Cores:       cores,
		RemoteBytes: partPages*core.PageSize + (16 << 20),
		Fabric:      fabric.DefaultParams(),
		// Eight memory nodes so the links never become the scaling wall:
		// the experiment isolates the software path, not the fabric.
		MemNodes: 8,
		// Two replicas double every write-back's wire work, which lands on
		// the cleaner/reclaimer daemons — parallel per-shard work in the
		// sharded arm, lock-hold time in the shared arm.
		Replicas:    2,
		Batch:       true,
		Tel:         recorderFor(),
		SampleEvery: SampleEvery,
	}
	// Both arms run the same daemon tuning; a tighter cleaner period keeps
	// the write-back backlog bounded under this write-heavy workload.
	mcfg := pagemgr.DefaultConfig(cfg.CacheFrames)
	mcfg.CleanerPeriod = 10 * sim.Microsecond
	cfg.Mgr = &mcfg
	if sharded {
		cfg.Shards = cores
	} else {
		cfg.Shards = 1
		cfg.WideLocks = true
	}
	eng := sim.New()
	sys := core.New(eng, cfg)
	sys.Start()
	base, err := sys.MmapDDC(ws)
	if err != nil {
		panic(err)
	}
	var elapsed sim.Time
	for c := 0; c < cores; c++ {
		c := c
		sys.Launch(fmt.Sprintf("app%d", c), c, func(sp *core.DDCProc) {
			t0 := sp.Now()
			// Two random passes over the partition (LCG page order, distinct
			// stream per core): pass one faults ~everything in, pass two
			// keeps faulting against a full cache, so the steady state the
			// row reports includes cleaner and reclaimer pressure.
			lcg := uint64(c)*0x9e3779b97f4a7c15 + 0xd1705
			pbase := base + uint64(c)*partPages*core.PageSize
			n := int(partPages) * 2
			for i := 0; i < n; i++ {
				lcg = lcg*6364136223846793005 + 1442695040888963407
				page := (lcg >> 33) % partPages
				sp.StoreU64(pbase+page*core.PageSize, lcg)
				// Re-dirty a stripe of the hot window every iteration. The
				// hot pages stay resident (their accessed bits win the
				// clock's second chance), so these are cache hits that feed
				// the cleaner a steady per-core write-back load — the
				// pressure a shared cleaner serializes behind one lock and
				// sharded cleaners drain in parallel.
				for h := uint64(0); h < scalingHotStride; h++ {
					hp := (uint64(i)*scalingHotStride + h) % scalingHotPages
					sp.StoreU64(pbase+hp*core.PageSize+8, lcg)
				}
			}
			if d := sp.Now() - t0; d > elapsed {
				elapsed = d
			}
		})
	}
	eng.Run()
	arm := "shared"
	if sharded {
		arm = "sharded"
	}
	collect(fmt.Sprintf("ext10/%s/%dc", arm, cores), sys)
	return sys.MajorFaults.N, elapsed, sys.FaultLat.P99()
}

// ExtScaling runs ext10: the core-count sweep over both arms.
func ExtScaling(sc Scale) ScalingResult {
	var res ScalingResult
	for _, cores := range ScalingCores {
		row := ScalingRow{Cores: cores}
		row.SharedFaults, row.SharedElapsed, row.SharedP99 = runScalingLeg(sc, cores, false)
		row.ShardedFaults, row.ShardedElapsed, row.ShardedP99 = runScalingLeg(sc, cores, true)
		row.SharedRate = rate(row.SharedFaults, row.SharedElapsed)
		row.ShardedRate = rate(row.ShardedFaults, row.ShardedElapsed)
		res.Rows = append(res.Rows, row)
	}
	base, at4 := res.Rows[0], res.Rows[0]
	for _, r := range res.Rows {
		if r.Cores == 4 {
			at4 = r
		}
	}
	if base.SharedRate > 0 {
		res.SharedSpeedup = at4.SharedRate / base.SharedRate
	}
	if base.ShardedRate > 0 {
		res.ShardedSpeedup = at4.ShardedRate / base.ShardedRate
	}
	return res
}

func rate(n int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / (float64(d) / float64(sim.Second))
}
