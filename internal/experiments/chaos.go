package experiments

import (
	"dilos/internal/chaos"
	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/sim"
)

// This file holds ext4, the chaos extension: DiLOS (and this repository's
// replication + health-monitor extensions) under deterministic fault
// injection. The paper assumes a lossless fabric and healthy memory nodes;
// ext4 measures what the failure-handling stack (internal/chaos,
// fabric.ReliableQP, core.HealthMonitor, placement's node states) costs and
// buys when that assumption breaks: a whole memory node crashes mid-run and
// later returns.

// ChaosResult is the ext4 outcome: the timeline of a replicated system
// riding through a scheduled node crash, plus the counters that prove the
// failure-handling stack — not luck — carried it.
type ChaosResult struct {
	Seed       uint64
	Pages      uint64
	CrashAt    sim.Time // scheduled outage start (node 1)
	CrashUntil sim.Time // scheduled outage end

	DetectedAt  sim.Time // health monitor tripped the breaker (0 = never)
	RecoveredAt sim.Time // recovery (incl. re-replication) completed (0 = never)
	RunFor      sim.Time // total run length (scales with the working set)

	// Application throughput by phase, GB/s of pages touched (whole
	// 1 ms buckets inside each phase).
	BaselineGBs  float64 // before the crash
	OutageGBs    float64 // crash start → recovery complete
	DipGBs       float64 // worst single bucket inside the outage
	RecoveredGBs float64 // after recovery

	// Series is the full per-millisecond throughput timeline (GB/s).
	Series []float64

	// Fault-handling counters.
	InjectedFails  int64 // ops the injector failed (node-down here)
	Retries        int64 // fetch-path op re-issues (retry/backoff layer)
	Timeouts       int64 // retried ops abandoned on budget
	GaveUp         int64 // retried ops abandoned on attempts
	ReplicaFetches int64 // fetches served by a non-primary replica
	WriteFails     int64 // write-backs that failed and stayed dirty
	ReReplicated   int64 // pages copied back onto the recovered node
	NodeFails      int64 // breaker trips
	NodeRecoveries int64 // completed recoveries
}

// Ext4 timeline: the crash window sits well inside the run so the result
// captures a clean baseline, the dip, and the recovered steady state. The
// run length grows with the working set, because recovery re-replicates
// every page sequentially and must complete on-screen.
const (
	chaosBucket     = sim.Millisecond
	chaosCrashAt    = 3 * sim.Millisecond
	chaosCrashUntil = 8 * sim.Millisecond
)

// chaosRunFor sizes the run: outage end + probe cooldowns + sequential
// re-replication of the whole working set (≈4.5 µs/page) + a post-recovery
// observation tail, rounded up to whole buckets.
func chaosRunFor(pages uint64) sim.Time {
	d := chaosCrashUntil + 2*sim.Millisecond + sim.Time(pages)*6*sim.Microsecond + 4*sim.Millisecond
	return (d + chaosBucket - 1) / chaosBucket * chaosBucket
}

// ExtChaosCrashAt exposes the scheduled outage start for the CLI's banner.
func ExtChaosCrashAt() sim.Time { return chaosCrashAt }

// ExtChaosCrashUntil exposes the scheduled outage end.
func ExtChaosCrashUntil() sim.Time { return chaosCrashUntil }

// ExtChaos runs ext4: a 2-node, fully replicated (Replicas: 2) DiLOS system
// under a scheduled crash of memory node 1, with the health monitor armed.
// The workload cycles a working set 8× its cache for a fixed span of
// virtual time, so the throughput series shows the crash dip and the
// recovery. Same seed ⇒ identical result, byte for byte.
func ExtChaos(sc Scale, seed uint64) ChaosResult {
	pages := sc.SeqPages / 8
	if pages < 1024 {
		pages = 1024
	}
	inj := chaos.NewInjector(chaos.Config{
		Seed: seed,
		Crashes: []chaos.CrashWindow{
			{Node: 1, At: chaosCrashAt, Until: chaosCrashUntil},
		},
	})
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: frames(pages, 0.125),
		Cores:       2,
		RemoteBytes: pages*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		MemNodes:    2,
		Replicas:    2,
		Chaos:       inj,
	})
	sys.Start()

	runFor := chaosRunFor(pages)
	buckets := make([]int64, runFor/chaosBucket)
	sys.Launch("chaos-app", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			panic(err)
		}
		i := uint64(0)
		for {
			now := sp.Proc().Now()
			if now >= runFor {
				return
			}
			// Read-modify-write sweep: reads exercise fetch failover, the
			// stores keep the cleaner writing back (and failing over) too.
			v := sp.LoadU64(base + i*core.PageSize)
			if i%4 == 0 {
				sp.StoreU64(base+i*core.PageSize, v+1)
			}
			if b := int(now / chaosBucket); b < len(buckets) {
				buckets[b] += core.PageSize
			}
			i = (i + 1) % pages
		}
	})
	eng.Run()
	collect("ext4/crash", sys)

	res := ChaosResult{
		Seed:           seed,
		Pages:          pages,
		CrashAt:        chaosCrashAt,
		CrashUntil:     chaosCrashUntil,
		RunFor:         runFor,
		DetectedAt:     sys.Health.LastFailAt[1],
		RecoveredAt:    sys.Health.LastRecoverAt[1],
		InjectedFails:  sys.Chaos.Fails.N,
		Retries:        sys.FetchRetries.Retries.N,
		Timeouts:       sys.FetchRetries.Timeouts.N,
		GaveUp:         sys.FetchRetries.GaveUp.N,
		ReplicaFetches: sys.ReplicaFetches.N,
		WriteFails:     sys.Mgr.WriteFails.N,
		ReReplicated:   sys.ReReplicated.N,
		NodeFails:      sys.Health.NodeFails.N,
		NodeRecoveries: sys.Health.NodeRecoveries.N,
	}
	for _, b := range buckets {
		res.Series = append(res.Series, float64(b)/1e9/chaosBucket.Seconds())
	}
	res.BaselineGBs = phaseGBs(buckets, 0, chaosCrashAt)
	end := res.RecoveredAt
	if end == 0 || end > runFor {
		end = runFor
	}
	res.OutageGBs = phaseGBs(buckets, chaosCrashAt, end)
	res.RecoveredGBs = phaseGBs(buckets, end, runFor)
	res.DipGBs = res.OutageGBs
	for i, b := range buckets {
		at := sim.Time(i) * chaosBucket
		if at >= chaosCrashAt && at+chaosBucket <= end {
			if g := float64(b) / 1e9 / chaosBucket.Seconds(); g < res.DipGBs {
				res.DipGBs = g
			}
		}
	}
	return res
}

// phaseGBs averages the buckets lying entirely inside [from, to) into a
// GB/s figure — partial buckets at the phase edges are dropped rather than
// diluting the average.
func phaseGBs(buckets []int64, from, to sim.Time) float64 {
	var bytes int64
	n := 0
	for i, b := range buckets {
		at := sim.Time(i) * chaosBucket
		if at >= from && at+chaosBucket <= to {
			bytes += b
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(bytes) / 1e9 / (sim.Time(n) * chaosBucket).Seconds()
}
