//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; timing
// comparisons skip under it (they would measure the instrumentation).
const raceEnabled = true
