package experiments

import (
	"dilos/internal/core"
	"dilos/internal/fastswap"
	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/redis"
	"dilos/internal/sim"
	"dilos/internal/space"
	"dilos/internal/stats"
)

// This file regenerates the Redis artifacts: Figure 10 (GET/LRANGE
// throughput), Table 4 (tail latency), and Figure 12 (guided-paging
// bandwidth), §6.2–§6.3.

// RedisRow is one bar of Figure 10 plus the Table 4 percentiles.
type RedisRow struct {
	System   SystemKind
	Fraction float64
	OpsPerS  float64
	P99      sim.Time
	P999     sim.Time
	Bad      int
	// Fault-path tails underneath the request tails (Table 4's extra
	// columns): p99 of the major- and minor-fault service latencies.
	MajorFaultP99 sim.Time
	MinorFaultP99 sim.Time
}

// redisGET runs one GET configuration.
func redisGET(kind SystemKind, frac float64, nKeys, queries int, sizeOf func(int) int) RedisRow {
	// Working set ≈ keys × mean value size (plus structures).
	var totalBytes uint64
	for i := 0; i < nKeys; i++ {
		totalBytes += uint64(sizeOf(i)) + 64
	}
	wsPages := totalBytes / 4096
	row := RedisRow{System: kind, Fraction: frac}

	runSrv := func(sp space.Space, guide *redis.AppGuide, p *sim.Proc) {
		srv := redis.NewServer(sp)
		if guide != nil {
			guide.Install(srv, p)
		}
		redis.PopulateGET(srv, nKeys, sizeOf)
		res := redis.RunGET(sp, srv, nKeys, queries, sizeOf, 17)
		row.OpsPerS = res.ThroughputOps()
		row.P99 = res.Latency.P99()
		row.P999 = res.Latency.P999()
		row.Bad = res.BadValues
	}

	eng := sim.New()
	var src statsSource
	var faultLat, minorLat *stats.Histogram
	switch kind {
	case SysFastswap:
		sys := fswap(eng, wsPages, frac)
		src, faultLat, minorLat = sys, sys.FaultLat, sys.MinorFaultLat
		sys.Launch("redis", 0, func(sp *fastswap.FSProc) { runSrv(sp, nil, sp.Proc()) })
	case SysDiLOSApp:
		g := redis.NewAppGuide()
		sys := dilos(eng, wsPages, frac, nil, g, nil, false)
		src, faultLat, minorLat = sys, sys.FaultLat, sys.MinorFaultLat
		sys.Launch("redis", 0, func(sp *core.DDCProc) { runSrv(sp, g, sp.Proc()) })
	default:
		sys := dilos(eng, wsPages, frac, pfFor(kind), nil, nil, false)
		src, faultLat, minorLat = sys, sys.FaultLat, sys.MinorFaultLat
		sys.Launch("redis", 0, func(sp *core.DDCProc) { runSrv(sp, nil, sp.Proc()) })
	}
	eng.Run()
	row.MajorFaultP99 = faultLat.P99()
	row.MinorFaultP99 = minorLat.P99()
	collect("redis.get/"+string(kind)+"/"+FracLabel(frac), src)
	return row
}

// redisSystems is the Figure 10 line-up.
var redisSystems = []SystemKind{SysFastswap, SysDiLOSNone, SysDiLOSRA, SysDiLOSTrend, SysDiLOSApp}

// redisFractions: the paper sweeps local memory on the x axis; 12.5–50 %
// covers the memory-constrained regime it highlights.
var redisFractions = []float64{0.125, 0.25, 0.5}

// Fig10a reproduces Figure 10(a): GET throughput, 4 KiB values.
func Fig10a(sc Scale) []RedisRow {
	return fig10get(sc.RedisKeys4K, sc.RedisQueries, redis.SizeFixed(4096))
}

// Fig10b reproduces Figure 10(b): GET throughput, 64 KiB values.
func Fig10b(sc Scale) []RedisRow {
	return fig10get(sc.RedisKeys64K, sc.RedisQueries/4, redis.SizeFixed(64<<10))
}

// Fig10c reproduces Figure 10(c): GET throughput, mixed Facebook-photo
// sizes (4–128 KiB).
func Fig10c(sc Scale) []RedisRow {
	return fig10get(sc.RedisKeysMix, sc.RedisQueries/4, redis.SizeMixed())
}

func fig10get(keys, queries int, sizeOf func(int) int) []RedisRow {
	var rows []RedisRow
	for _, kind := range redisSystems {
		for _, frac := range redisFractions {
			rows = append(rows, redisGET(kind, frac, keys, queries, sizeOf))
		}
	}
	return rows
}

// Fig10d reproduces Figure 10(d): LRANGE_100 throughput over many lists.
func Fig10d(sc Scale) []RedisRow {
	var rows []RedisRow
	wsPages := uint64(sc.RedisListElem) * 130 / 4096
	for _, kind := range redisSystems {
		for _, frac := range redisFractions {
			row := RedisRow{System: kind, Fraction: frac}
			runSrv := func(sp space.Space, guide *redis.AppGuide, p *sim.Proc) {
				srv := redis.NewServer(sp)
				if guide != nil {
					guide.Install(srv, p)
				}
				redis.PopulateLRANGE(srv, sc.RedisLists, sc.RedisListElem, 100, 19)
				res := redis.RunLRANGE(sp, srv, sc.RedisLists, sc.RedisQueries/10, 23)
				row.OpsPerS = res.ThroughputOps()
				row.P99 = res.Latency.P99()
				row.P999 = res.Latency.P999()
			}
			eng := sim.New()
			var src statsSource
			var faultLat, minorLat *stats.Histogram
			switch kind {
			case SysFastswap:
				sys := fswap(eng, wsPages, frac)
				src, faultLat, minorLat = sys, sys.FaultLat, sys.MinorFaultLat
				sys.Launch("redis", 0, func(sp *fastswap.FSProc) { runSrv(sp, nil, sp.Proc()) })
			case SysDiLOSApp:
				g := redis.NewAppGuide()
				sys := dilos(eng, wsPages, frac, nil, g, nil, false)
				src, faultLat, minorLat = sys, sys.FaultLat, sys.MinorFaultLat
				sys.Launch("redis", 0, func(sp *core.DDCProc) { runSrv(sp, g, sp.Proc()) })
			default:
				sys := dilos(eng, wsPages, frac, pfFor(kind), nil, nil, false)
				src, faultLat, minorLat = sys, sys.FaultLat, sys.MinorFaultLat
				sys.Launch("redis", 0, func(sp *core.DDCProc) { runSrv(sp, nil, sp.Proc()) })
			}
			eng.Run()
			row.MajorFaultP99 = faultLat.P99()
			row.MinorFaultP99 = minorLat.P99()
			collect("redis.lrange/"+string(kind)+"/"+FracLabel(frac), src)
			rows = append(rows, row)
		}
	}
	return rows
}

// Tab4Row is one row of Table 4: tail latencies at the memory-constrained
// setting.
type Tab4Row struct {
	System     SystemKind
	GetP99     sim.Time
	GetP999    sim.Time
	LRangeP99  sim.Time
	LRangeP999 sim.Time
	// Fault-service tails during the GET run: they explain where the
	// request tails above come from (major = remote fetch, minor = a page
	// already in flight or cached unmapped).
	MajorFaultP99 sim.Time
	MinorFaultP99 sim.Time
}

// Tab4 reproduces Table 4: p99/p99.9 of GET (mixed) and LRANGE at 12.5 %
// local memory.
func Tab4(sc Scale) []Tab4Row {
	get := fig10Filter(Fig10c(sc), 0.125)
	lr := fig10Filter(Fig10d(sc), 0.125)
	var rows []Tab4Row
	for i, kind := range redisSystems {
		rows = append(rows, Tab4Row{
			System:        kind,
			GetP99:        get[i].P99,
			GetP999:       get[i].P999,
			LRangeP99:     lr[i].P99,
			LRangeP999:    lr[i].P999,
			MajorFaultP99: get[i].MajorFaultP99,
			MinorFaultP99: get[i].MinorFaultP99,
		})
	}
	return rows
}

func fig10Filter(rows []RedisRow, frac float64) []RedisRow {
	var out []RedisRow
	for _, r := range rows {
		if r.Fraction == frac {
			out = append(out, r)
		}
	}
	return out
}

// Fig12Row summarizes one Figure 12 configuration: network bytes moved
// during the DEL and GET phases, with and without guided paging.
type Fig12Row struct {
	Guided     bool
	DelTxMB    float64 // write-back traffic during DEL churn
	GetRxMB    float64 // fetch traffic during the GET sweep
	SavedBytes int64   // allocator-reported bytes excluded from migration
	RxSeries   []stats.BandwidthPoint
	TxSeries   []stats.BandwidthPoint
}

// Fig12 reproduces Figure 12: bandwidth consumption during DEL then GET
// with the app-aware allocator's guided paging versus default full-page
// paging. The paper populates 128 M × 128 B values, deletes ~70 %, and
// sweeps GETs with ~25 % local memory; this run keeps those ratios.
func Fig12(sc Scale) []Fig12Row {
	const nKeys = 24000 // 128 B values ⇒ ~4.6 MiB live + structures
	const valSize = 128
	run := func(guided bool) Fig12Row {
		eng := sim.New()
		wsPages := uint64(nKeys) * (valSize + 96) / 4096
		var sys *core.System
		var alloc *struct{ saved int64 }
		_ = alloc
		// Build the system; the eviction guide is the server's allocator,
		// which doesn't exist until the workload runs, so wire it through
		// a forwarding guide.
		fw := &forwardingGuide{}
		var eg pagemgr.EvictionGuide
		if guided {
			eg = fw
		}
		sys = dilos(eng, wsPages, 0.25, nil, nil, eg, false)
		sys.Link.RxBW = stats.NewBandwidth("rx", sim.Millisecond)
		sys.Link.TxBW = stats.NewBandwidth("tx", sim.Millisecond)
		row := Fig12Row{Guided: guided}
		sys.Launch("redis", 0, func(sp *core.DDCProc) {
			srv := redis.NewServer(sp)
			fw.guide = srv.Allocator()
			redis.PopulateGET(srv, nKeys, redis.SizeFixed(valSize))
			tx0 := sys.Link.TxBytes.N
			redis.RunDEL(srv, nKeys, 0.7, 29)
			// Let the cleaner/reclaimer drain the DEL churn.
			sp.Proc().Sleep(2 * sim.Millisecond)
			row.DelTxMB = float64(sys.Link.TxBytes.N-tx0) / 1e6
			rx0 := sys.Link.RxBytes.N
			res := redis.RunGET(sp, srv, nKeys, nKeys/2, redis.SizeFixed(valSize), 31)
			row.GetRxMB = float64(sys.Link.RxBytes.N-rx0) / 1e6
			_ = res
		})
		eng.Run()
		label := "fig12/default"
		if guided {
			label = "fig12/guided"
		}
		collect(label, sys)
		row.SavedBytes = sys.Mgr.VectorSaves.N
		row.RxSeries = sys.Link.RxBW.Series()
		row.TxSeries = sys.Link.TxBW.Series()
		return row
	}
	return []Fig12Row{run(false), run(true)}
}

// forwardingGuide defers to an eviction guide installed later (the
// workload's allocator is created inside the sim).
type forwardingGuide struct {
	guide pagemgr.EvictionGuide
}

// LiveChunks implements pagemgr.EvictionGuide.
func (f *forwardingGuide) LiveChunks(vpn pagetable.VPN) ([]pagemgr.Chunk, bool) {
	if f.guide == nil {
		return nil, false
	}
	return f.guide.LiveChunks(vpn)
}
