package experiments

import (
	"sort"
	"strings"

	"dilos/internal/chaos"
	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/migrate"
	"dilos/internal/placement"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
)

// This file holds ext7, the elastic-pool extension: live page migration
// under load. The paper's pool membership is fixed at boot; ext7 drains a
// memory node out of a 3-node replicated pool while the workload keeps
// faulting through it, and measures what the copy-then-flip protocol
// (internal/migrate) costs the fault path — windowed p99 latency during
// the drain versus before it — and proves it loses nothing: every load is
// checked against a host-side shadow of the stores. A second leg crashes
// the draining node mid-evacuation (chaos + health monitor) and the drain
// still completes off the surviving replicas.

// MigrateDrainNode is the node ext7 drains — cmd wires -migrate-drain.
var MigrateDrainNode = 2

// MigrateWatermark, when positive, arms continuous auto-rebalancing on
// ext7's migration engine — cmd wires -migrate-watermark.
var MigrateWatermark float64

// ElasticResult is the ext7 outcome.
type ElasticResult struct {
	Pages uint64
	Node  int // drained node

	DrainAt     sim.Time
	DrainDoneAt sim.Time // node Removed (0 = never)
	RunFor      sim.Time

	// Migration-engine counters for the clean leg.
	PagesMoved   int64
	CopyRestarts int64 // copy rounds restarted by racing write-backs
	Stranded     int64 // moves aborted after MaxRounds (re-collected later)
	Forwarded    int   // forwarding entries live at the end

	// Windowed major-fault latency: before the drain, during it, after.
	BaselineP50, BaselineP99 sim.Time
	DrainP50, DrainP99       sim.Time
	AfterP99                 sim.Time
	P99Ratio                 float64 // DrainP99 / BaselineP99 (target ≤ 2×)

	// Application throughput by phase (GB/s of pages touched) and the
	// full per-millisecond series.
	BaselineGBs, DrainGBs, AfterGBs float64
	Series                          []float64

	// Corruptions counts loads that contradicted the host-side shadow of
	// every store — the zero-loss acceptance gate.
	Corruptions int64

	// Chaos leg: same drain, but the draining node crashes mid-copy.
	ChaosSeed        uint64
	ChaosDrainDoneAt sim.Time
	ChaosPagesMoved  int64
	ChaosStranded    int64
	ChaosNodeFails   int64
	ChaosCorruptions int64
}

const (
	elasticBucket  = sim.Millisecond
	elasticDrainAt = 3 * sim.Millisecond
)

// elasticRunFor sizes the run: baseline, the drain of ~2/3 of the slot
// population at the engine's pace, and a post-drain observation tail.
func elasticRunFor(pages uint64) sim.Time {
	d := elasticDrainAt + sim.Time(pages)*3*sim.Microsecond + 5*sim.Millisecond
	return (d + elasticBucket - 1) / elasticBucket * elasticBucket
}

// elasticLeg runs one drain-under-load simulation. inj is nil for the
// clean leg; with chaos the health monitor is armed automatically.
type elasticLeg struct {
	drainDoneAt sim.Time
	sys         *core.System
	rec         *telemetry.Recorder
	buckets     []int64
	corruptions int64
	runFor      sim.Time
}

func runElasticLeg(pages uint64, node int, inj *chaos.Injector) elasticLeg {
	eng := sim.New()
	// The recorder is always on here (unlike the other experiments): the
	// windowed p99 needs per-fault spans. Recording adds no virtual time,
	// so the clean and chaos legs stay comparable to every other run.
	rec := telemetry.NewRecorder(1 << 15)
	// Half the default batch size: a 64 KiB burst per doorbell keeps the
	// worst-case head-of-line wait a demand fault can land behind inside
	// the 2× p99 budget, at the cost of a slower (still background) drain.
	tun := migrate.Tuning{BatchPages: 16, Watermark: MigrateWatermark}
	sys := core.New(eng, core.Config{
		CacheFrames: frames(pages, 0.125),
		Cores:       2,
		RemoteBytes: pages*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		MemNodes:    3,
		Replicas:    2,
		Chaos:       inj,
		Migrate:     &tun,
		Tel:         rec,
		SampleEvery: SampleEvery,
	})
	sys.Start()

	leg := elasticLeg{sys: sys, rec: rec, runFor: elasticRunFor(pages)}
	leg.buckets = make([]int64, leg.runFor/elasticBucket)
	shadow := make([]uint64, pages)
	sys.Launch("elastic-app", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			panic(err)
		}
		touch := func() {
			if b := int(sp.Proc().Now() / elasticBucket); b < len(leg.buckets) {
				leg.buckets[b] += core.PageSize
			}
		}
		for i := range shadow {
			shadow[i] = uint64(i) * 2654435761
			sp.StoreU64(base+uint64(i)*core.PageSize, shadow[i])
			touch()
		}
		i := uint64(0)
		for {
			now := sp.Proc().Now()
			if now >= leg.runFor {
				return
			}
			// Read-modify-write sweep checked against the shadow: any page
			// a migration flip, crash, or write-back race garbled shows up
			// as a corruption, not a silent pass.
			v := sp.LoadU64(base + i*core.PageSize)
			if v != shadow[i] {
				leg.corruptions++
			}
			if i%4 == 0 {
				shadow[i] = v + 1
				sp.StoreU64(base+i*core.PageSize, shadow[i])
			}
			touch()
			i = (i + 1) % pages
		}
	})
	eng.Go("elastic-driver", func(p *sim.Proc) {
		p.Sleep(elasticDrainAt)
		if err := sys.Drain(node); err != nil {
			panic(err)
		}
		for p.Now() < leg.runFor {
			if sys.Space().State(node) == placement.Removed {
				leg.drainDoneAt = p.Now()
				return
			}
			p.Sleep(50 * sim.Microsecond)
		}
	})
	eng.Run()
	return leg
}

// faultQuantiles pulls the major-fault spans that started inside
// [from, to) off the per-core tracks and returns the p50/p99 durations.
func faultQuantiles(rec *telemetry.Recorder, from, to sim.Time) (p50, p99 sim.Time) {
	var durs []sim.Time
	for id, name := range rec.Tracks() {
		if !strings.HasPrefix(name, "fault/core") {
			continue
		}
		for _, s := range rec.Spans(id) {
			if s.Kind == telemetry.KindMajorFault && s.Start >= from && s.Start < to {
				durs = append(durs, s.Dur())
			}
		}
	}
	if len(durs) == 0 {
		return 0, 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	q := func(p float64) sim.Time {
		i := int(p * float64(len(durs)-1))
		return durs[i]
	}
	return q(0.50), q(0.99)
}

// ExtElastic runs ext7: a 3-node, 2-replica DiLOS pool at 12.5% local
// cache drains MigrateDrainNode mid-run (clean leg), then repeats the
// drain with the draining node crashing mid-copy (chaos leg). Same
// inputs ⇒ identical result, byte for byte.
func ExtElastic(sc Scale, seed uint64) ElasticResult {
	pages := sc.SeqPages / 4
	if pages < 1024 {
		pages = 1024
	}
	node := MigrateDrainNode

	clean := runElasticLeg(pages, node, nil)
	collect("ext7/drain", clean.sys)

	res := ElasticResult{
		Pages:        pages,
		Node:         node,
		DrainAt:      elasticDrainAt,
		DrainDoneAt:  clean.drainDoneAt,
		RunFor:       clean.runFor,
		PagesMoved:   clean.sys.Mig.PagesMoved.N,
		CopyRestarts: clean.sys.Mig.CopyRestarts.N,
		Stranded:     clean.sys.Mig.Stranded.N,
		Forwarded:    clean.sys.Space().Forwarded(),
		Corruptions:  clean.corruptions,
	}
	for _, b := range clean.buckets {
		res.Series = append(res.Series, float64(b)/1e9/elasticBucket.Seconds())
	}
	drainEnd := res.DrainDoneAt
	if drainEnd == 0 {
		drainEnd = res.RunFor
	}
	// The first millisecond warms the cache; skip it in the baseline.
	res.BaselineP50, res.BaselineP99 = faultQuantiles(clean.rec, elasticBucket, elasticDrainAt)
	res.DrainP50, res.DrainP99 = faultQuantiles(clean.rec, elasticDrainAt, drainEnd)
	_, res.AfterP99 = faultQuantiles(clean.rec, drainEnd, res.RunFor)
	if res.BaselineP99 > 0 {
		res.P99Ratio = float64(res.DrainP99) / float64(res.BaselineP99)
	}
	res.BaselineGBs = phaseGBs(clean.buckets, elasticBucket, elasticDrainAt)
	res.DrainGBs = phaseGBs(clean.buckets, elasticDrainAt, drainEnd)
	res.AfterGBs = phaseGBs(clean.buckets, drainEnd, res.RunFor)

	// Chaos leg: the draining node dies shortly after the drain starts
	// and stays down past most of the evacuation; the engine rolls
	// forward off the surviving replicas.
	inj := chaos.NewInjector(chaos.Config{
		Seed: seed,
		Crashes: []chaos.CrashWindow{
			{Node: node, At: elasticDrainAt + 500*sim.Microsecond, Until: clean.runFor - 3*sim.Millisecond},
		},
	})
	crash := runElasticLeg(pages, node, inj)
	collect("ext7/drain-crash", crash.sys)
	res.ChaosSeed = seed
	res.ChaosDrainDoneAt = crash.drainDoneAt
	res.ChaosPagesMoved = crash.sys.Mig.PagesMoved.N
	res.ChaosStranded = crash.sys.Mig.Stranded.N
	res.ChaosNodeFails = crash.sys.Health.NodeFails.N
	res.ChaosCorruptions = crash.corruptions
	return res
}
