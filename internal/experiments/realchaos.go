package experiments

// This file holds ext9, the real-process chaos extension: N real memnoded
// daemons on loopback TCP, a concurrent driver keeping an R-way replicated
// working set on them, and a harness that kill -9's one replica mid-run —
// the real-socket twin of ext4. Where ext4 proves the *simulated* pool
// rides through a node crash, ext9 proves the real transport does: every
// acknowledged byte is checked against a host-side shadow copy, every
// request carries a deadline budget bounding its stall, and once the
// killed daemon restarts the harness re-replicates onto it and throughput
// recovers. The same harness measures the pipelined v2 client against the
// legacy v1 one-at-a-time client on the same wire.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/transport"
)

const (
	realPageSize = 4096
	realBucket   = 100 * time.Millisecond
	realPKey     = 0xd170
)

// RealChaosConfig parameterizes ext9. Zero values take defaults sized for
// a CI smoke run (a few seconds end to end).
type RealChaosConfig struct {
	MemnodedPath string // built memnoded binary; see BuildMemnoded

	Nodes    int // daemon count (>= 2)
	Replicas int // copies per page (>= 2 to survive the kill)
	Pages    int // working-set pages
	Workers  int // concurrent driver workers

	Deadline time.Duration // per-request budget: the stall bound under test

	Baseline time.Duration // healthy phase before the kill
	Outage   time.Duration // kill -9 .. restart
	Recovery time.Duration // post-restart observation

	KillNode  int   // which replica the harness kill -9's
	Seed      int64 // driver RNG seed
	V1Compare bool  // also measure v1 vs v2 READ throughput on node 0
}

func (c *RealChaosConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Pages == 0 {
		c.Pages = 512
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Deadline == 0 {
		c.Deadline = 500 * time.Millisecond
	}
	if c.Baseline == 0 {
		c.Baseline = time.Second
	}
	if c.Outage == 0 {
		c.Outage = 1200 * time.Millisecond
	}
	if c.Recovery == 0 {
		c.Recovery = time.Second
	}
	if c.KillNode == 0 {
		c.KillNode = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// RealChaosResult is the ext9 outcome.
type RealChaosResult struct {
	Nodes, Replicas, Pages int
	KilledNode             int
	KilledPid              int

	Ops, Reads, Writes int64 // successful driver operations
	FailedOps          int64 // ops that exhausted their budget (bounded errors)
	Corruptions        int64 // acknowledged bytes that read back wrong — must be 0
	Verified           int64 // page-replica pairs checked in the final sweep
	ReReplicated       int64 // pages copied back onto the restarted node
	RecoverTook        time.Duration

	// Driver throughput by phase (MB/s of page payload moved, whole
	// buckets inside each phase) plus the full per-bucket series.
	BaselineMBs, OutageMBs, RecoveredMBs float64
	Series                               []float64
	KillAt, RecoverAt                    time.Duration

	// Per-op wall latency. The acceptance gate: P99 must stay inside the
	// configured budget (plus sweep slack) even through the kill.
	DeadlineBudget               time.Duration
	StallP50, StallP99, StallMax time.Duration

	// Pipelined v2 vs legacy v1 sequential READ throughput (V1Compare).
	V1ReadMBs, V2ReadMBs float64

	// Merged transport.* client counters.
	Transport map[string]int64
}

// BuildMemnoded builds cmd/memnoded into dir and returns the binary path.
// It must run somewhere inside the module.
func BuildMemnoded(dir string) (string, error) {
	bin := filepath.Join(dir, "memnoded")
	out, err := exec.Command("go", "build", "-o", bin, "dilos/cmd/memnoded").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("build memnoded: %v\n%s", err, out)
	}
	return bin, nil
}

// realNode is one daemon plus the harness's view of it.
type realNode struct {
	idx  int
	addr string
	cmd  *exec.Cmd
	c    *transport.Client
	base uint64
	live atomic.Bool
	// dirty[p] marks a page-replica whose daemon-side copy is not known to
	// match the shadow (an unacknowledged write, or the whole set after a
	// kill): readers and the verifier skip it until a successful write or
	// the re-replication sweep clears it.
	dirty []atomic.Bool
}

// spawnMemnoded starts a daemon and waits for its serving banner, which
// carries the bound address (so ":0" listens work).
func spawnMemnoded(bin, listen string, sizeMB int) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin,
		"-listen", listen,
		"-size", strconv.Itoa(sizeMB),
		"-pkey", fmt.Sprintf("%#x", realPKey))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, " on "); i >= 0 {
				if j := strings.Index(line, ", pkey"); j > i {
					select {
					case addrCh <- line[i+4 : j]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", fmt.Errorf("memnoded on %s never reported its address", listen)
	}
}

// fillPattern stamps a page buffer with its identity and version, so a
// byte served from the wrong page, the wrong offset, or a torn write shows
// up as a mismatch.
func fillPattern(buf []byte, page int, version uint64) {
	v := uint64(page)<<32 | (version & 0xFFFFFFFF)
	for i := 0; i+8 <= len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], v+uint64(i))
	}
}

// ExtRealChaos runs ext9. It spawns cfg.Nodes memnoded processes, drives
// an R-way replicated working set from cfg.Workers concurrent workers,
// kill -9's one daemon after the baseline phase, restarts it after the
// outage phase, re-replicates onto it, and verifies every acknowledged
// byte against the host-side shadow.
func ExtRealChaos(cfg RealChaosConfig) (RealChaosResult, error) {
	cfg.defaults()
	res := RealChaosResult{
		Nodes: cfg.Nodes, Replicas: cfg.Replicas, Pages: cfg.Pages,
		KilledNode: cfg.KillNode, DeadlineBudget: cfg.Deadline,
	}
	if cfg.MemnodedPath == "" {
		return res, fmt.Errorf("ext9: MemnodedPath not set (use BuildMemnoded)")
	}
	if cfg.Replicas < 2 || cfg.Replicas > cfg.Nodes {
		return res, fmt.Errorf("ext9: replicas must be in [2, nodes], got %d/%d", cfg.Replicas, cfg.Nodes)
	}
	if cfg.KillNode < 0 || cfg.KillNode >= cfg.Nodes {
		return res, fmt.Errorf("ext9: kill node %d out of range", cfg.KillNode)
	}
	sizeMB := cfg.Pages*realPageSize>>20 + 4

	// --- spawn the pool ---------------------------------------------------
	nodes := make([]*realNode, cfg.Nodes)
	defer func() {
		for _, n := range nodes {
			if n == nil {
				continue
			}
			if n.c != nil {
				n.c.Close()
			}
			if n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
				n.cmd.Wait()
			}
		}
	}()
	for i := range nodes {
		cmd, addr, err := spawnMemnoded(cfg.MemnodedPath, "127.0.0.1:0", sizeMB)
		if err != nil {
			return res, err
		}
		n := &realNode{idx: i, addr: addr, cmd: cmd, dirty: make([]atomic.Bool, cfg.Pages)}
		nodes[i] = n
		n.c, err = transport.Dial(addr, realPKey,
			transport.WithDeadline(cfg.Deadline),
			transport.WithDepth(32),
			transport.WithRedials(50), // budget, not attempts, bounds a request
			transport.WithBreaker(8, 200*time.Millisecond))
		if err != nil {
			return res, fmt.Errorf("ext9: dial node %d: %w", i, err)
		}
		if n.base, err = n.c.Alloc(uint32(cfg.Pages)); err != nil {
			return res, fmt.Errorf("ext9: alloc on node %d: %w", i, err)
		}
		n.live.Store(true)
	}

	// --- shared driver state ----------------------------------------------
	shadow := make([]byte, cfg.Pages*realPageSize)
	versions := make([]uint64, cfg.Pages)
	locks := make([]sync.RWMutex, cfg.Pages)
	for p := 0; p < cfg.Pages; p++ { // seed every page so reads verify from op one
		locks[p].Lock()
		versions[p] = 1
		buf := shadow[p*realPageSize : (p+1)*realPageSize]
		fillPattern(buf, p, 1)
		for k := 0; k < cfg.Replicas; k++ {
			n := nodes[(p+k)%cfg.Nodes]
			if err := n.c.Write(n.base+uint64(p)*realPageSize, buf); err != nil {
				locks[p].Unlock()
				return res, fmt.Errorf("ext9: seed page %d on node %d: %w", p, n.idx, err)
			}
		}
		locks[p].Unlock()
	}

	total := cfg.Baseline + cfg.Outage + cfg.Recovery
	buckets := make([]int64, int(total/realBucket)+100)
	var ops, reads, writes, failed, corruptions atomic.Int64
	stop := make(chan struct{})
	t0 := time.Now()
	account := func(n int64) {
		if i := int(time.Since(t0) / realBucket); i < len(buckets) {
			atomic.AddInt64(&buckets[i], n)
		}
	}

	// --- workers ----------------------------------------------------------
	var wg sync.WaitGroup
	workerLats := make([][]sim.Time, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			rbuf := make([]byte, realPageSize)
			wbuf := make([]byte, realPageSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := rng.Intn(cfg.Pages)
				start := time.Now()
				if rng.Intn(100) < 30 {
					// Write: bump the version, push to every live replica,
					// commit to the shadow if at least one replica took it.
					// Replicas that failed (or were skipped) go dirty until
					// a later write or the re-replication sweep heals them.
					locks[p].Lock()
					versions[p]++
					fillPattern(wbuf, p, versions[p])
					okAny := false
					for k := 0; k < cfg.Replicas; k++ {
						n := nodes[(p+k)%cfg.Nodes]
						if !n.live.Load() {
							n.dirty[p].Store(true)
							continue
						}
						if err := n.c.Write(n.base+uint64(p)*realPageSize, wbuf); err != nil {
							n.dirty[p].Store(true)
							failed.Add(1)
						} else {
							n.dirty[p].Store(false)
							okAny = true
						}
					}
					if okAny {
						copy(shadow[p*realPageSize:], wbuf)
						writes.Add(1)
						ops.Add(1)
						account(realPageSize)
					} else {
						versions[p]-- // nobody took it; keep the shadow honest
					}
					locks[p].Unlock()
				} else {
					// Read: first live, clean replica; fail over on error.
					locks[p].RLock()
					got := false
					for k := 0; k < cfg.Replicas && !got; k++ {
						n := nodes[(p+k)%cfg.Nodes]
						if !n.live.Load() || n.dirty[p].Load() {
							continue
						}
						if err := n.c.Read(n.base+uint64(p)*realPageSize, rbuf); err != nil {
							failed.Add(1)
							continue
						}
						if !bytes.Equal(rbuf, shadow[p*realPageSize:(p+1)*realPageSize]) {
							corruptions.Add(1)
						}
						got = true
					}
					if got {
						reads.Add(1)
						ops.Add(1)
						account(realPageSize)
					}
					locks[p].RUnlock()
				}
				workerLats[w] = append(workerLats[w], sim.Time(time.Since(start).Nanoseconds()))
			}
		}(w)
	}

	// --- timeline: baseline, kill -9, restart, re-replicate ---------------
	victim := nodes[cfg.KillNode]
	time.Sleep(cfg.Baseline)
	res.KillAt = time.Since(t0)
	res.KilledPid = victim.cmd.Process.Pid
	// Kill first, mark dead second: requests in flight (and the few issued
	// in between) hit a dead server for real, so the run measures the
	// client's bounded failure path, not just the harness's bookkeeping.
	victim.cmd.Process.Kill() // SIGKILL: no drain, no goodbye
	victim.cmd.Wait()
	victim.live.Store(false)

	time.Sleep(cfg.Outage)

	// Restart on the same port, wait for it to serve, and heal it.
	recoverStart := time.Now()
	cmd, addr, err := spawnMemnoded(cfg.MemnodedPath, victim.addr, sizeMB)
	if err != nil {
		close(stop)
		wg.Wait()
		return res, fmt.Errorf("ext9: restart node %d: %w", cfg.KillNode, err)
	}
	victim.cmd, victim.addr = cmd, addr
	pingDeadline := time.Now().Add(10 * time.Second)
	for {
		if err = victim.c.Ping(); err == nil {
			break
		}
		if time.Now().After(pingDeadline) {
			close(stop)
			wg.Wait()
			return res, fmt.Errorf("ext9: restarted node %d never answered: %w", cfg.KillNode, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	base, err := victim.c.Alloc(uint32(cfg.Pages))
	if err != nil || base != victim.base {
		close(stop)
		wg.Wait()
		return res, fmt.Errorf("ext9: realloc on restarted node: base %d vs %d, err %v", base, victim.base, err)
	}
	// The restarted daemon is empty: every replica it owns is dirty. Bring
	// it live so fresh writes land on it, then sweep the survivors' copies
	// across page by page, clearing dirty as each lands.
	for p := 0; p < cfg.Pages; p++ {
		victim.dirty[p].Store(true)
	}
	victim.live.Store(true)
	sweepBuf := make([]byte, realPageSize)
	for p := 0; p < cfg.Pages; p++ {
		owned := false
		for k := 0; k < cfg.Replicas; k++ {
			if (p+k)%cfg.Nodes == cfg.KillNode {
				owned = true
			}
		}
		if !owned {
			victim.dirty[p].Store(false) // not a replica of p; nothing to heal
			continue
		}
		locks[p].Lock()
		if !victim.dirty[p].Load() { // a concurrent write already healed it
			locks[p].Unlock()
			continue
		}
		healed := false
		for k := 0; k < cfg.Replicas && !healed; k++ {
			n := nodes[(p+k)%cfg.Nodes]
			if n == victim || !n.live.Load() || n.dirty[p].Load() {
				continue
			}
			if n.c.Read(n.base+uint64(p)*realPageSize, sweepBuf) != nil {
				continue
			}
			if victim.c.Write(victim.base+uint64(p)*realPageSize, sweepBuf) == nil {
				victim.dirty[p].Store(false)
				res.ReReplicated++
				healed = true
			}
		}
		locks[p].Unlock()
	}
	res.RecoverTook = time.Since(recoverStart)
	res.RecoverAt = time.Since(t0)

	time.Sleep(cfg.Recovery)
	close(stop)
	wg.Wait()

	// --- final verification sweep ------------------------------------------
	vbuf := make([]byte, realPageSize)
	for p := 0; p < cfg.Pages; p++ {
		for k := 0; k < cfg.Replicas; k++ {
			n := nodes[(p+k)%cfg.Nodes]
			if !n.live.Load() || n.dirty[p].Load() {
				continue
			}
			if err := n.c.Read(n.base+uint64(p)*realPageSize, vbuf); err != nil {
				failed.Add(1)
				continue
			}
			res.Verified++
			if !bytes.Equal(vbuf, shadow[p*realPageSize:(p+1)*realPageSize]) {
				corruptions.Add(1)
			}
		}
	}

	// --- results ----------------------------------------------------------
	res.Ops, res.Reads, res.Writes = ops.Load(), reads.Load(), writes.Load()
	res.FailedOps, res.Corruptions = failed.Load(), corruptions.Load()
	h := stats.NewHistogram("ext9.op")
	for _, lats := range workerLats {
		for _, l := range lats {
			h.Record(l)
		}
	}
	res.StallP50 = time.Duration(h.P50())
	res.StallP99 = time.Duration(h.P99())
	res.StallMax = time.Duration(h.Max())
	end := time.Since(t0)
	if nb := int(end / realBucket); nb < len(buckets) {
		buckets = buckets[:nb]
	}
	for _, b := range buckets {
		res.Series = append(res.Series, float64(b)/1e6/realBucket.Seconds())
	}
	res.BaselineMBs = realPhaseMBs(buckets, 0, res.KillAt)
	res.OutageMBs = realPhaseMBs(buckets, res.KillAt, res.RecoverAt)
	res.RecoveredMBs = realPhaseMBs(buckets, res.RecoverAt, end)
	res.Transport = map[string]int64{}
	for _, n := range nodes {
		for k, v := range n.c.Stats.Snapshot() {
			res.Transport[k] += v
		}
	}

	if cfg.V1Compare {
		res.V1ReadMBs, res.V2ReadMBs, err = realCompareV1V2(nodes[0].addr, nodes[0].base)
		if err != nil {
			return res, fmt.Errorf("ext9: v1/v2 comparison: %w", err)
		}
	}
	return res, nil
}

// realPhaseMBs averages whole buckets inside [from, to) into MB/s.
func realPhaseMBs(buckets []int64, from, to time.Duration) float64 {
	var bytesN int64
	n := 0
	for i, b := range buckets {
		at := time.Duration(i) * realBucket
		if at >= from && at+realBucket <= to {
			bytesN += b
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(bytesN) / 1e6 / (time.Duration(n) * realBucket).Seconds()
}

// realCompareV1V2 measures sequential 4 KiB READ throughput through the
// legacy one-at-a-time v1 client and the pipelined v2 client against the
// same daemon.
func realCompareV1V2(addr string, base uint64) (v1MBs, v2MBs float64, err error) {
	const ops = 3000
	const span = 64 // pages cycled over

	v1c, err := transport.DialV1(addr, realPKey)
	if err != nil {
		return 0, 0, err
	}
	defer v1c.Close()
	buf := make([]byte, realPageSize)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := v1c.Read(base+uint64(i%span)*realPageSize, buf); err != nil {
			return 0, 0, err
		}
	}
	v1MBs = float64(ops*realPageSize) / 1e6 / time.Since(start).Seconds()

	v2c, err := transport.Dial(addr, realPKey,
		transport.WithDepth(64), transport.WithDeadline(10*time.Second))
	if err != nil {
		return 0, 0, err
	}
	defer v2c.Close()
	const window = 64
	bufs := make([][]byte, window)
	for i := range bufs {
		bufs[i] = make([]byte, realPageSize)
	}
	pend := make([]*transport.Pending, 0, window)
	start = time.Now()
	for i := 0; i < ops; i++ {
		if len(pend) == window {
			if err := pend[0].Wait(); err != nil {
				return 0, 0, err
			}
			pend = pend[1:]
		}
		p, err := v2c.AsyncRead(base+uint64(i%span)*realPageSize, bufs[i%window])
		if err != nil {
			return 0, 0, err
		}
		pend = append(pend, p)
	}
	for _, p := range pend {
		if err := p.Wait(); err != nil {
			return 0, 0, err
		}
	}
	v2MBs = float64(ops*realPageSize) / 1e6 / time.Since(start).Seconds()
	return v1MBs, v2MBs, nil
}
