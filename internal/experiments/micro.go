package experiments

import (
	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/memnode"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/workloads"
)

// This file regenerates the microbenchmark artifacts: Figures 1, 2, 6 and
// Tables 1, 2, 3 (§3.1, §6.1).

// BreakdownRow is one bar of Figures 1/6: per-fault mean latency segments.
type BreakdownRow struct {
	Label     string
	Exception sim.Time
	Software  sim.Time // swap mgmt / page alloc (Fastswap) or handler (DiLOS)
	Fetch     sim.Time
	Map       sim.Time
	Reclaim   sim.Time
	Total     sim.Time
}

// Fig1 reproduces Figure 1: the latency breakdown of Fastswap's page fault
// handler during sequential read — the average case (12.5 % cache, steady
// reclamation) and the no-reclamation case (cache ≥ working set, cold
// faults only).
func Fig1(sc Scale) []BreakdownRow {
	run := func(label string, frac float64) BreakdownRow {
		eng := sim.New()
		sys := fswap(eng, sc.SeqPages, frac)
		sys.Launch("seq", 0, func(sp *fastswap.FSProc) {
			base, err := sys.MmapDDC(sc.SeqPages)
			if err != nil {
				panic(err)
			}
			workloads.SeqRead(sp, base, sc.SeqPages)
		})
		eng.Run()
		collect("fig1/"+label, sys)
		e, m, f, mp, r := sys.BD.Mean()
		return BreakdownRow{
			Label: label, Exception: e, Software: m, Fetch: f, Map: mp,
			Reclaim: r, Total: sys.BD.Total(),
		}
	}
	return []BreakdownRow{
		run("Average", 0.125),
		// 1.5x headroom: with cache == working set exactly, the tail of a
		// cold sweep still dips below the watermarks.
		run("No reclamation", 1.5),
	}
}

// Fig2Row is one point of Figure 2: RDMA latency per object size.
type Fig2Row struct {
	Size     int
	ReadLat  sim.Time
	WriteLat sim.Time
}

// Fig2 reproduces Figure 2: one-sided RDMA latency across object sizes.
func Fig2() []Fig2Row {
	node := memnode.New(64<<20, 1)
	link := fabric.NewLink(node, fabric.DefaultParams())
	qp := link.MustQP("fig2", 1)
	off, _ := node.AllocRange(8)
	var rows []Fig2Row
	t := sim.Time(0)
	for size := 64; size <= 16384; size *= 2 {
		buf := make([]byte, size)
		t += sim.Second // keep the link idle between samples
		r := qp.Read(t, off, buf)
		t += sim.Second
		w := qp.Write(t, off, buf)
		rows = append(rows, Fig2Row{
			Size:     size,
			ReadLat:  r.CompleteAt - r.IssuedAt,
			WriteLat: w.CompleteAt - w.IssuedAt,
		})
	}
	return rows
}

// FaultCountRow is one row of Tables 1 and 3.
type FaultCountRow struct {
	System SystemKind
	Major  int64
	Minor  int64
	Total  int64
}

// Tab1 reproduces Table 1: page fault counts during a sequential read on
// Fastswap with 12.5 % local cache.
func Tab1(sc Scale) FaultCountRow {
	_, major, minor := runOn(SysFastswap, sc.SeqPages, 0.125,
		func(sp spaceLike, mmap func(uint64) (uint64, error)) {
			base, _ := mmap(sc.SeqPages)
			workloads.SeqRead(sp, base, sc.SeqPages)
		})
	return FaultCountRow{System: SysFastswap, Major: major, Minor: minor, Total: major + minor}
}

// Tab3 reproduces Table 3: fault counts for Fastswap and the DiLOS
// prefetcher flavours on the same sequential read.
func Tab3(sc Scale) []FaultCountRow {
	var rows []FaultCountRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSNone, SysDiLOSRA, SysDiLOSTrend} {
		_, major, minor := runOn(kind, sc.SeqPages, 0.125,
			func(sp spaceLike, mmap func(uint64) (uint64, error)) {
				base, _ := mmap(sc.SeqPages)
				workloads.SeqRead(sp, base, sc.SeqPages)
			})
		rows = append(rows, FaultCountRow{System: kind, Major: major, Minor: minor, Total: major + minor})
	}
	return rows
}

// Tab2Row is one row of Table 2.
type Tab2Row struct {
	System   SystemKind
	ReadGBs  float64
	WriteGBs float64
}

// Tab2 reproduces Table 2: sequential read and write throughput at 12.5 %
// local cache.
func Tab2(sc Scale) []Tab2Row {
	gbps := func(d sim.Time) float64 {
		return stats.GBps(float64(sc.SeqPages*4096) / d.Seconds())
	}
	var rows []Tab2Row
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSNone, SysDiLOSRA, SysDiLOSTrend} {
		rd, _, _ := runOn(kind, sc.SeqPages, 0.125,
			func(sp spaceLike, mmap func(uint64) (uint64, error)) {
				base, _ := mmap(sc.SeqPages)
				workloads.SeqRead(sp, base, sc.SeqPages)
			})
		wr, _, _ := runOn(kind, sc.SeqPages, 0.125,
			func(sp spaceLike, mmap func(uint64) (uint64, error)) {
				base, _ := mmap(sc.SeqPages)
				workloads.SeqWrite(sp, base, sc.SeqPages)
			})
		rows = append(rows, Tab2Row{System: kind, ReadGBs: gbps(rd), WriteGBs: gbps(wr)})
	}
	return rows
}

// Fig6 reproduces Figure 6: fault-handler latency breakdown, DiLOS vs
// Fastswap (both without prefetching), plus Fastswap without reclamation.
func Fig6(sc Scale) []BreakdownRow {
	rows := Fig1(sc) // Fastswap average + no-reclamation
	rows[0].Label = "Fastswap"
	rows[1].Label = "Fastswap (no reclaim)"

	eng := sim.New()
	sys := dilos(eng, sc.SeqPages, 0.125, nil, nil, nil, false)
	sys.Launch("seq", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(sc.SeqPages)
		if err != nil {
			panic(err)
		}
		workloads.SeqRead(sp, base, sc.SeqPages)
	})
	eng.Run()
	collect("fig6/DiLOS", sys)
	e, h, f, m, r := sys.BD.Mean()
	rows = append(rows, BreakdownRow{
		Label: "DiLOS", Exception: e, Software: h, Fetch: f, Map: m,
		Reclaim: r, Total: sys.BD.Total(),
	})
	return rows
}
