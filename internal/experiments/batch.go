package experiments

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/prefetch"
	"dilos/internal/redis"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/workloads"
)

// This file holds ext5: the doorbell-batching ablation. Figure 2 and §4.5
// show per-op base costs dominating small transfers; Leap gets its wins by
// issuing the whole prefetch window at once and Clio by amortizing
// doorbells. Ext5 measures what batched submission (core.Config.Batch)
// buys on an otherwise identical system: sequential read (prefetch window
// per doorbell), sequential write (cleaner write-back batches), k-means,
// and Redis GET over mixed value sizes, all at the memory-constrained
// 12.5 % local cache the paper highlights.

// BatchRow is one (workload, submission mode) measurement of ext5.
type BatchRow struct {
	Workload  string
	Batched   bool
	ReadGBs   float64  // sequential-read throughput (seq read leg)
	WriteGBs  float64  // app-visible write throughput (seq write leg)
	CleanGBs  float64  // write-back (cleaner+reclaimer) link bandwidth
	OpsPerS   float64  // Redis GET throughput (redis leg)
	Elapsed   sim.Time // workload completion time
	Doorbells int64    // fabric.batch.doorbells across all links
	BatchOps  int64    // fabric.batch.ops across all links
	Coalesced int64    // fabric.batch.coalesced_segs across all links
	MeanBatch float64  // ops per doorbell
}

func modeLabel(batched bool) string {
	if batched {
		return "batched"
	}
	return "per-op"
}

// fillBatchStats sums the doorbell-batching counters over the system's
// links into the row.
func fillBatchStats(row *BatchRow, sys *core.System) {
	for _, l := range sys.Links {
		row.Doorbells += l.Batches.N
		row.BatchOps += l.BatchedOps.N
		row.Coalesced += l.CoalescedSegs.N
	}
	if row.Doorbells > 0 {
		row.MeanBatch = float64(row.BatchOps) / float64(row.Doorbells)
	}
}

// withBatch runs fn with the package-wide Batch toggle pinned to the leg's
// mode (dilos() reads it at construction).
func withBatch(batched bool, fn func()) {
	old := Batch
	Batch = batched
	defer func() { Batch = old }()
	fn()
}

// ext5Seq is the sequential read/write leg at 12.5 % cache with a 31-page
// readahead window (Linux's default 128 KiB) — the configuration where
// every window pays per-op doorbells today and batching has the most to
// amortize.
func ext5Seq(sc Scale, batched, write bool) BatchRow {
	name := "read"
	if write {
		name = "write"
	}
	row := BatchRow{Workload: "seq " + name + " 12.5%", Batched: batched}
	withBatch(batched, func() {
		eng := sim.New()
		sys := dilos(eng, sc.SeqPages, 0.125, prefetch.NewReadahead(31), nil, nil, false)
		var d sim.Time
		sys.Launch("seq", 0, func(sp *core.DDCProc) {
			base, _ := sys.MmapDDC(sc.SeqPages)
			if write {
				d = workloads.SeqWrite(sp, base, sc.SeqPages)
			} else {
				d = workloads.SeqRead(sp, base, sc.SeqPages)
			}
		})
		eng.Run()
		collect(fmt.Sprintf("ext5/seq-%s/%s", name, modeLabel(batched)), sys)
		row.Elapsed = d
		gbs := stats.GBps(float64(sc.SeqPages*4096) / d.Seconds())
		if write {
			row.WriteGBs = gbs
		} else {
			row.ReadGBs = gbs
		}
		var tx int64
		for _, l := range sys.Links {
			tx += l.TxBytes.N
		}
		row.CleanGBs = stats.GBps(float64(tx) / d.Seconds())
		fillBatchStats(&row, sys)
	})
	return row
}

// ext5KMeans is the k-means leg: strided numeric scans whose prefetch
// windows batch well.
func ext5KMeans(sc Scale, batched bool) BatchRow {
	row := BatchRow{Workload: "k-means 12.5%", Batched: batched}
	withBatch(batched, func() {
		cfg := workloads.DefaultKMeans(sc.KMeansPoints)
		pb, ab, db := workloads.KMeansLayout(cfg)
		wsPages := (pb + ab + db) / 4096
		eng := sim.New()
		sys := dilos(eng, wsPages, 0.125, prefetch.NewReadahead(0), nil, nil, false)
		sys.Launch("kmeans", 0, func(sp *core.DDCProc) {
			base, _ := sys.MmapDDC(wsPages + 16)
			workloads.KMeansInit(sp, base, cfg)
			row.Elapsed, _ = workloads.KMeans(sp, base, base+pb, base+pb+ab, cfg)
		})
		eng.Run()
		collect("ext5/kmeans/"+modeLabel(batched), sys)
		fillBatchStats(&row, sys)
	})
	return row
}

// ext5Redis is the Redis GET leg over the paper's mixed value sizes.
func ext5Redis(sc Scale, batched bool) BatchRow {
	row := BatchRow{Workload: "redis GET mixed 12.5%", Batched: batched}
	withBatch(batched, func() {
		sizeOf := redis.SizeMixed()
		nKeys, queries := sc.RedisKeysMix, sc.RedisQueries/4
		var totalBytes uint64
		for i := 0; i < nKeys; i++ {
			totalBytes += uint64(sizeOf(i)) + 64
		}
		wsPages := totalBytes / 4096
		eng := sim.New()
		sys := dilos(eng, wsPages, 0.125, prefetch.NewReadahead(0), nil, nil, false)
		sys.Launch("redis", 0, func(sp *core.DDCProc) {
			srv := redis.NewServer(sp)
			redis.PopulateGET(srv, nKeys, sizeOf)
			res := redis.RunGET(sp, srv, nKeys, queries, sizeOf, 17)
			row.OpsPerS = res.ThroughputOps()
			row.Elapsed = res.Elapsed
		})
		eng.Run()
		collect("ext5/redis-get-mixed/"+modeLabel(batched), sys)
		fillBatchStats(&row, sys)
	})
	return row
}

// ExtBatch runs ext5: per-op vs doorbell-batched submission on four
// workloads at 12.5 % local cache. Rows come in (per-op, batched) pairs
// per workload so the printout reads as before/after.
func ExtBatch(sc Scale) []BatchRow {
	var rows []BatchRow
	for _, batched := range []bool{false, true} {
		rows = append(rows, ext5Seq(sc, batched, false))
	}
	for _, batched := range []bool{false, true} {
		rows = append(rows, ext5Seq(sc, batched, true))
	}
	for _, batched := range []bool{false, true} {
		rows = append(rows, ext5KMeans(sc, batched))
	}
	for _, batched := range []bool{false, true} {
		rows = append(rows, ext5Redis(sc, batched))
	}
	return rows
}
