package experiments

import (
	"bytes"

	"dilos/internal/chaos"
	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/obs"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
	"dilos/internal/workloads"
)

// This file holds ext11: the price and the payoff of the always-on
// observability plane (internal/obs). Three questions, three legs:
//
//   - Overhead: the ext5 sequential-read throughput plane with the full
//     plane attached (SLO monitor + journal + tail-sampled flight
//     recorder) versus plane-off. The plane runs entirely in host time,
//     so the virtual-time throughput must be *identical*, not merely
//     within 1 % — the leg gates on equality. (Host-time cost is gated
//     separately by BenchmarkFaultPathObs via scripts/benchcheck.sh.)
//   - Determinism: two same-seed plane-on runs must render byte-identical
//     /metrics, /statusz, and /journalz pages — observability output is
//     part of the reproducibility contract.
//   - Detection: a chaos tail storm (TailAt mid-run) must raise the
//     burn-rate alert within the detection budget, and the storm-free
//     twin of the same run must never alert.

// Ext11's SLO tuning compresses the SRE multi-window shape to the
// simulator's µs–ms timescale: the budget sits ~7× above DiLOS's clean
// fault p99 (≈3.5 µs, Figure 6) so a healthy run never burns, while a
// ×30 tail amplification blows it on every affected fault.
const (
	ext11Budget  = 25 * sim.Microsecond
	ext11Target  = 0.99
	ext11MaxBurn = 8
	ext11Long    = 500 * sim.Microsecond
	ext11Short   = 100 * sim.Microsecond
	ext11Eval    = 50 * sim.Microsecond

	// The detection leg's timeline: a fixed-span cyclic read with the
	// tail storm switching on mid-run.
	ext11RunFor = 10 * sim.Millisecond
	ext11TailAt = 5 * sim.Millisecond

	// DetectBudget is the gate on alert latency: one long window (the
	// burn must sustain across it) plus evaluation slack.
	ext11DetectBudget = ext11Long + 4*ext11Eval
)

// Ext11TailAt exposes the storm onset for the CLI banner.
func Ext11TailAt() sim.Time { return ext11TailAt }

// Ext11DetectBudget exposes the detection-latency gate.
func Ext11DetectBudget() sim.Time { return ext11DetectBudget }

// ObsResult is the ext11 outcome.
type ObsResult struct {
	Seed uint64

	// Overhead leg: ext5-style sequential read at 12.5 % cache.
	OffElapsed sim.Time // plane off
	OnElapsed  sim.Time // plane on (monitor + journal + sampled recorder)
	OffGBs     float64
	OnGBs      float64

	// Determinism leg: two same-seed plane-on runs.
	Deterministic bool
	PageBytes     int // rendered metrics+status+journal size
	SampledOut    int64
	JournalEvents int

	// Alert legs.
	CleanAlerts   int64    // raised on the storm-free runs (must stay 0)
	TailAt        sim.Time // storm onset
	Detected      bool
	DetectedAt    sim.Time // first raised alert on the storm run
	DetectLatency sim.Time // DetectedAt - TailAt
	TailsInjected int64
	StormRaised   int64 // alert raises on the storm run
}

// ext11Plane builds the full plane with the µs-scale objective template.
func ext11Plane() *obs.Plane {
	pl := obs.NewPlane()
	pl.Objective = obs.Objective{
		Budget: ext11Budget,
		Target: ext11Target,
		Rules:  []obs.BurnRule{{Long: ext11Long, Short: ext11Short, MaxBurn: ext11MaxBurn}},
	}
	pl.EvalEvery = ext11Eval
	return pl
}

// ext11Seq runs the ext5 sequential-read leg (12.5 % cache, 31-page
// readahead) with the given plane (nil = plane off) and returns elapsed
// virtual time plus the system for post-run inspection.
func ext11Seq(sc Scale, pl *obs.Plane) (sim.Time, *core.System) {
	eng := sim.New()
	cfg := core.Config{
		CacheFrames: frames(sc.SeqPages, 0.125),
		Cores:       4,
		RemoteBytes: sc.SeqPages*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  prefetch.NewReadahead(31),
		Obs:         pl,
	}
	if pl != nil {
		// The always-on shape: tail-sampled flight recorder — keep every
		// over-budget span, 1 in 16 of the rest.
		cfg.Tel = telemetry.NewRecorder(0)
		cfg.Tel.SetPolicy(telemetry.SamplePolicy{Threshold: ext11Budget, KeepEvery: 16})
	}
	applyCores(&cfg)
	sys := core.New(eng, cfg)
	sys.Start()
	var d sim.Time
	sys.Launch("seq", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(sc.SeqPages)
		if err != nil {
			panic(err)
		}
		d = workloads.SeqRead(sp, base, sc.SeqPages)
	})
	eng.Run()
	return d, sys
}

// ext11Render produces the full observability output of a finished run —
// the bytes the determinism leg compares.
func ext11Render(sys *core.System, pl *obs.Plane) []byte {
	page := obs.AppendMetrics(nil, sys.Registry().Snapshot(), sys.Tel)
	page = sys.AppendStatus(page, sys.Eng.Now())
	if pl != nil && pl.Journal != nil {
		page = pl.Journal.AppendJSONL(page)
	}
	return page
}

// ext11Detect runs the detection leg: a fixed-span cyclic read under a
// seeded injector whose tail storm (×30 amplification on 60 % of ops)
// switches on at ext11TailAt — or never, when storm is false. The
// storm-free twin consumes the identical PRNG sequence (the window gate
// is draw-free), so the two runs differ only in injected latency.
func ext11Detect(sc Scale, seed uint64, storm bool) (*obs.Plane, *chaos.Injector) {
	pages := sc.SeqPages / 8
	if pages < 1024 {
		pages = 1024
	}
	ccfg := chaos.Config{Seed: seed}
	if storm {
		ccfg.TailProb = 0.6
		ccfg.TailFactor = 30
		ccfg.TailAt = ext11TailAt
	}
	inj := chaos.NewInjector(ccfg)
	pl := ext11Plane()
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: frames(pages, 0.125),
		Cores:       2,
		RemoteBytes: pages*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		Chaos:       inj,
		Obs:         pl,
	})
	sys.Start()
	sys.Launch("obs-app", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			panic(err)
		}
		i := uint64(0)
		for sp.Proc().Now() < ext11RunFor {
			sp.LoadU64(base + i*core.PageSize)
			i = (i + 1) % pages
		}
	})
	eng.Run()
	label := "ext11/detect-clean"
	if storm {
		label = "ext11/detect-storm"
	}
	collect(label, sys)
	return pl, inj
}

// ExtObs runs ext11. Same seed ⇒ identical result, byte for byte —
// including every page the plane publishes.
func ExtObs(sc Scale, seed uint64) ObsResult {
	r := ObsResult{Seed: seed, TailAt: ext11TailAt}

	// Overhead: plane off, then two same-seed plane-on runs (the second
	// feeds the determinism comparison).
	var offSys, onSys, onSys2 *core.System
	r.OffElapsed, offSys = ext11Seq(sc, nil)
	collect("ext11/seq-off", offSys)
	plOn := ext11Plane()
	r.OnElapsed, onSys = ext11Seq(sc, plOn)
	collect("ext11/seq-on", onSys)
	plOn2 := ext11Plane()
	on2, sys2 := ext11Seq(sc, plOn2)
	onSys2 = sys2
	r.OffGBs = stats.GBps(float64(sc.SeqPages*4096) / r.OffElapsed.Seconds())
	r.OnGBs = stats.GBps(float64(sc.SeqPages*4096) / r.OnElapsed.Seconds())

	pageA := ext11Render(onSys, plOn)
	pageB := ext11Render(onSys2, plOn2)
	r.Deterministic = bytes.Equal(pageA, pageB) && r.OnElapsed == on2
	r.PageBytes = len(pageA)
	r.SampledOut = onSys.Tel.SampledOutTotal()
	r.JournalEvents = len(plOn.Journal.Events())
	r.CleanAlerts = plOn.Monitor.Raised.N + plOn2.Monitor.Raised.N

	// Detection: storm and storm-free twins.
	plStorm, inj := ext11Detect(sc, seed, true)
	r.TailsInjected = inj.Tails.N
	r.StormRaised = plStorm.Monitor.Raised.N
	if at, ok := plStorm.Monitor.FirstRaise(""); ok {
		r.Detected = true
		r.DetectedAt = at
		r.DetectLatency = at - ext11TailAt
	}
	plClean, _ := ext11Detect(sc, seed, false)
	r.CleanAlerts += plClean.Monitor.Raised.N
	return r
}
