package experiments

import "testing"

func TestExtTenantIsolationAndDeterminism(t *testing.T) {
	// ext8's acceptance bar, at the tiny scale: quotas hold the victim's
	// p99 within the gate while the unpartitioned control exceeds it, the
	// bucket visibly throttles the aggressor, the floor survives a run full
	// of rebalancer ticks, and the isolated leg repeats byte-identically.
	res := ExtTenant(tiny())
	if res.SoloFaults == 0 || res.IsoFaults == 0 || res.CtrlFaults == 0 {
		t.Fatalf("degenerate legs: faults solo=%d iso=%d ctrl=%d",
			res.SoloFaults, res.IsoFaults, res.CtrlFaults)
	}
	if !res.IsoPass {
		t.Fatalf("isolated p99 %v is %.2fx solo %v (gate %.1fx)",
			res.IsoP99, res.IsoRatio, res.SoloP99, res.Gate)
	}
	if !res.CtrlExceeds {
		t.Fatalf("control p99 %v only %.2fx solo %v — the aggressor is not adversarial enough to prove isolation matters",
			res.CtrlP99, res.CtrlRatio, res.SoloP99)
	}
	if res.AggrFaultsIso >= res.AggrFaultsCtrl {
		t.Fatalf("bucket did not throttle the aggressor: %d majors capped vs %d uncapped",
			res.AggrFaultsIso, res.AggrFaultsCtrl)
	}
	if res.VictimReservedEnd < res.VictimFloor {
		t.Fatalf("rebalancer pushed the victim below its floor: reserved %d < floor %d",
			res.VictimReservedEnd, res.VictimFloor)
	}
	if !res.Deterministic {
		t.Fatal("same-seed isolated legs gave different registry snapshots")
	}
}
