package experiments

import (
	"testing"
)

// obsScale keeps ext11 fast under `go test` while preserving the shapes
// the gates check: enough pages that the seq legs fault for millions of
// virtual ns and the detect legs sweep a multi-ms window.
func obsScale() Scale {
	sc := DefaultScale()
	sc.SeqPages = 2048
	return sc
}

// The ext11 gates, pinned: the plane is free in virtual time, its output
// is deterministic, the burn-rate alert fires within budget on the storm
// leg and never on a clean one.
func TestExtObsGates(t *testing.T) {
	if testing.Short() {
		t.Skip("ext11 runs several full systems")
	}
	r := ExtObs(obsScale(), 7)

	// Gate 1: always-on overhead. The plane runs in host time only; the
	// virtual-time throughput plane-on must equal plane-off exactly —
	// stronger than the issue's <1 % bound.
	if r.OnElapsed != r.OffElapsed {
		t.Errorf("plane-on elapsed %v != plane-off %v (plane perturbed virtual time)",
			r.OnElapsed, r.OffElapsed)
	}

	// Gate 2: same-seed determinism of the full rendered output
	// (metrics + statusz + journal).
	if !r.Deterministic {
		t.Error("same-seed plane-on runs rendered different observability pages")
	}
	if r.PageBytes == 0 {
		t.Error("rendered observability page is empty")
	}
	if r.SampledOut == 0 {
		t.Error("tail sampling never rejected a span — policy not applied")
	}

	// Gate 3: detection. The storm leg must alert within the budget…
	if !r.Detected {
		t.Fatal("tail storm never raised the burn-rate alert")
	}
	if r.DetectedAt < r.TailAt {
		t.Errorf("alert at %v predates the storm at %v", r.DetectedAt, r.TailAt)
	}
	if r.DetectLatency > Ext11DetectBudget() {
		t.Errorf("detection latency %v exceeds budget %v", r.DetectLatency, Ext11DetectBudget())
	}
	if r.TailsInjected == 0 {
		t.Error("storm leg injected no tails")
	}

	// …and no storm-free leg may ever alert.
	if r.CleanAlerts != 0 {
		t.Errorf("clean legs raised %d alerts, want 0", r.CleanAlerts)
	}
}
