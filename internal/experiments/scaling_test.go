package experiments

import "testing"

// TestExtScalingGates runs the full ext10 sweep at the smoke scale and
// asserts the headline acceptance gates: the sharded fault path scales
// near-linearly from 1 to 4 cores while the wide-lock baseline plateaus,
// and the sharded tail latency stays flat while the shared tail balloons.
func TestExtScalingGates(t *testing.T) {
	res := ExtScaling(tiny())
	if len(res.Rows) != len(ScalingCores) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(ScalingCores))
	}
	var at4 ScalingRow
	for _, r := range res.Rows {
		if r.SharedFaults == 0 || r.ShardedFaults == 0 {
			t.Fatalf("degenerate row at %d cores: shared=%d sharded=%d faults",
				r.Cores, r.SharedFaults, r.ShardedFaults)
		}
		if r.SharedP99 == 0 || r.ShardedP99 == 0 {
			t.Fatalf("no fault latency samples at %d cores", r.Cores)
		}
		if r.Cores == 4 {
			at4 = r
		}
	}
	if res.ShardedSpeedup < 2.5 {
		t.Errorf("sharded 1->4 core speedup = %.2fx, want >= 2.5x", res.ShardedSpeedup)
	}
	if res.SharedSpeedup >= 1.5 {
		t.Errorf("shared 1->4 core speedup = %.2fx, want < 1.5x (the wide lock must plateau)", res.SharedSpeedup)
	}
	// The per-core shards keep the tail flat; the wide lock queues fault
	// handlers behind whole daemon sweeps.
	if at4.ShardedP99*2 > at4.SharedP99 {
		t.Errorf("4-core p99: sharded %v vs shared %v, want sharded at most half", at4.ShardedP99, at4.SharedP99)
	}
}

// TestExtScalingDeterministic reruns one sharded leg and demands identical
// fault counts, elapsed time, and tail latency: the sharded daemons and
// work stealing must not introduce schedule nondeterminism.
func TestExtScalingDeterministic(t *testing.T) {
	n1, e1, p1 := runScalingLeg(tiny(), 4, true)
	n2, e2, p2 := runScalingLeg(tiny(), 4, true)
	if n1 != n2 || e1 != e2 || p1 != p2 {
		t.Fatalf("sharded leg not deterministic: (%d,%v,%v) vs (%d,%v,%v)", n1, e1, p1, n2, e2, p2)
	}
}
