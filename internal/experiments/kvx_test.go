package experiments

import "testing"

// The ext12 gates, pinned: the layerwise guide holds ≥1.5× the unguided
// decode throughput at the smallest cache ratio, the lifecycle legs
// (en-masse free, region recycling, early-layer spill) all run, content
// integrity holds on every arm, and a same-seed rerun is byte-identical.
func TestExtKVGates(t *testing.T) {
	if testing.Short() {
		t.Skip("ext12 runs ten full systems")
	}
	r := ExtKV(DefaultScale(), 42)

	if want := len(KVFractions) * 3; len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d (3 arms × %d ratios)", len(r.Rows), want, len(KVFractions))
	}
	if r.SpeedupSmallest < 1.5 {
		t.Errorf("guided/none decode throughput at %s is %.2fx, gate requires ≥1.5x",
			FracLabel(KVFractions[0]), r.SpeedupSmallest)
	}
	if !r.Deterministic {
		t.Error("same-seed guided rerun was not byte-identical")
	}
	if !r.MetricsHasKV {
		t.Error("kvcache stat families missing from the rendered /metrics page")
	}

	byArm := map[string]map[float64]KVRow{}
	for _, row := range r.Rows {
		if row.BadReads != 0 {
			t.Errorf("%s@%v: %d bad decode reads — KV content corrupted", row.Arm, row.Fraction, row.BadReads)
		}
		if row.FreedPages == 0 {
			t.Errorf("%s@%v: mid-run Finish freed no frames", row.Arm, row.Fraction)
		}
		if row.SpilledPages == 0 {
			t.Errorf("%s@%v: SpillEarlyLayers evicted nothing", row.Arm, row.Fraction)
		}
		if row.DecodeToks == 0 || row.TPOTMean == 0 || row.TTFT == 0 {
			t.Errorf("%s@%v: empty measurement %+v", row.Arm, row.Fraction, row)
		}
		if byArm[row.Arm] == nil {
			byArm[row.Arm] = map[float64]KVRow{}
		}
		byArm[row.Arm][row.Fraction] = row
	}

	for _, f := range KVFractions {
		none, guided := byArm["none"][f], byArm["guided"][f]
		if guided.TTFT >= none.TTFT {
			t.Errorf("at %v guided TTFT %v is not below unguided %v", f, guided.TTFT, none.TTFT)
		}
		if guided.TPOTMean >= none.TPOTMean {
			t.Errorf("at %v guided TPOT %v is not below unguided %v", f, guided.TPOTMean, none.TPOTMean)
		}
		if guided.GuidePages == 0 {
			t.Errorf("at %v the guided arm issued no prefetches", f)
		}
		if none.GuidePages != 0 {
			t.Errorf("at %v the unguided arm somehow prefetched %d pages", f, none.GuidePages)
		}
	}
}
