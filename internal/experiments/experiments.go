// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): one constructor per artifact, each returning structured
// rows that cmd/dilosbench prints in the paper's format. DESIGN.md's
// per-experiment index maps each function here to its paper artifact,
// workload, and modules; EXPERIMENTS.md records paper-vs-measured.
//
// Scale: the paper's working sets are 8–40 GB; these runs default to
// MiB-scale working sets with the same local-cache *fractions*
// (12.5/25/50/100 %), which preserve every shape the paper reports (see
// DESIGN.md §2). Scale can be raised via the Scale struct.
package experiments

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/guide"
	"dilos/internal/pagemgr"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/space"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// Collect, when set, receives a labeled stats.Snapshot for every system an
// experiment runs — cmd/dilosbench wires it to -stats. Snapshots are taken
// after the simulation finishes, so they cover the whole run.
var Collect func(label string, snap stats.Snapshot)

// Batch, when set, boots every DiLOS system the experiments construct with
// doorbell-batched submission (core.Config.Batch) — cmd/dilosbench wires
// it to -batch. Ext5 toggles it per leg to measure the win directly.
var Batch bool

// CoreCount, when positive, overrides the 4-core default of the systems
// the figure/table experiments boot and switches DiLOS to the per-core
// sharded page manager (Shards = CoreCount) — cmd/dilosbench wires it to
// -cores. Zero keeps every experiment's committed default configuration
// (legacy unsharded manager), so the published numbers are untouched.
var CoreCount int

// WideLocks, when set alongside CoreCount, boots DiLOS systems with the
// shared-structure wide-lock baseline instead of the sharded manager —
// the ablation arm ext10 measures, exposed for ad-hoc -cores runs.
var WideLocks bool

// applyCores applies the -cores override to one DiLOS config.
func applyCores(cfg *core.Config) {
	if CoreCount <= 0 {
		return
	}
	cfg.Cores = CoreCount
	if WideLocks {
		cfg.Shards = 1
		cfg.WideLocks = true
	} else {
		cfg.Shards = CoreCount
	}
}

// Telemetry, when set, boots every system the experiments construct with a
// flight recorder and gauge sampler — cmd/dilosbench wires it to
// -trace-out. The recording itself never perturbs simulated time.
var Telemetry bool

// SampleEvery is the gauge-sampling interval used when Telemetry is on.
// Zero keeps the recorder but disables periodic sampling.
var SampleEvery sim.Time

// TelemetrySink, when set, receives each labeled run's recorder and
// sampler after the simulation finishes (sam may be nil).
var TelemetrySink func(label string, rec *telemetry.Recorder, sam *telemetry.Sampler)

// statsSource is any paging system exposing its metric registry.
type statsSource interface{ Registry() *stats.Registry }

// telemetrySource is any paging system exposing its flight recorder.
type telemetrySource interface {
	Telemetry() (*telemetry.Recorder, *telemetry.Sampler)
}

// collect feeds sys's snapshot to the Collect hook, if one is installed,
// and its flight recording to the TelemetrySink.
func collect(label string, sys statsSource) {
	if CoreCount > 0 {
		// One stats block per -cores setting: the label carries the sweep
		// point so blocks from different settings never alias.
		label = fmt.Sprintf("cores%d/%s", CoreCount, label)
	}
	if Collect != nil {
		Collect(label, sys.Registry().Snapshot())
	}
	if TelemetrySink != nil {
		if ts, ok := sys.(telemetrySource); ok {
			if rec, sam := ts.Telemetry(); rec != nil {
				TelemetrySink(label, rec, sam)
			}
		}
	}
}

// recorderFor returns a fresh flight recorder when Telemetry is on.
func recorderFor() *telemetry.Recorder {
	if !Telemetry {
		return nil
	}
	return telemetry.NewRecorder(0)
}

// Scale sizes the workloads. Zero values select the defaults.
type Scale struct {
	SeqPages      uint64 // sequential read/write working set (pages)
	QuicksortN    uint64 // elements (u64)
	KMeansPoints  uint64
	SnappyBytes   uint64
	DataframeRows uint64
	GraphScale    int // RMAT scale (2^scale vertices)
	RedisKeys4K   int
	RedisKeys64K  int
	RedisKeysMix  int
	RedisQueries  int
	RedisLists    int
	RedisListElem int
}

// DefaultScale is used by the benchmarks and dilosbench unless overridden.
func DefaultScale() Scale {
	return Scale{
		SeqPages:      16384, // 64 MiB
		QuicksortN:    1 << 20,
		KMeansPoints:  150_000,
		SnappyBytes:   8 << 20,
		DataframeRows: 150_000,
		GraphScale:    13,
		RedisKeys4K:   1500,
		RedisKeys64K:  150,
		RedisKeysMix:  240,
		RedisQueries:  3000,
		RedisLists:    64,
		RedisListElem: 12000,
	}
}

// CacheFractions are the local-memory fractions the paper sweeps.
var CacheFractions = []float64{0.125, 0.25, 0.5, 1.0}

// FracLabel formats a cache fraction the way the paper's axes do.
func FracLabel(f float64) string {
	switch f {
	case 0.125:
		return "12.5%"
	case 0.25:
		return "25%"
	case 0.5:
		return "50%"
	case 1.0:
		return "100%"
	}
	return ""
}

// SystemKind names an evaluated system configuration.
type SystemKind string

// The configurations the evaluation compares.
const (
	SysFastswap   SystemKind = "Fastswap"
	SysDiLOSNone  SystemKind = "DiLOS no-prefetch"
	SysDiLOSRA    SystemKind = "DiLOS readahead"
	SysDiLOSTrend SystemKind = "DiLOS trend-based"
	SysDiLOSApp   SystemKind = "DiLOS app-aware"
	SysDiLOSTCP   SystemKind = "DiLOS-TCP"
	SysAIFM       SystemKind = "AIFM"
)

// frames computes the cache size for a working set and fraction, with a
// floor so daemons have room to breathe.
func frames(workingSetPages uint64, frac float64) int {
	f := int(float64(workingSetPages) * frac)
	if f < 96 {
		f = 96
	}
	return f
}

// dilos boots a DiLOS node for a working set.
func dilos(eng *sim.Engine, wsPages uint64, frac float64, pf prefetch.Prefetcher,
	g guide.Guide, eg pagemgr.EvictionGuide, tcp bool) *core.System {
	params := fabric.DefaultParams()
	if tcp {
		params = fabric.TCPParams()
	}
	cfg := core.Config{
		CacheFrames:   frames(wsPages, frac),
		Cores:         4,
		RemoteBytes:   wsPages*core.PageSize + (64 << 20),
		Fabric:        params,
		Prefetcher:    pf,
		EvictionGuide: eg,
		Batch:         Batch,
		Tel:           recorderFor(),
		SampleEvery:   SampleEvery,
	}
	applyCores(&cfg)
	sys := core.New(eng, cfg)
	if g != nil {
		sys.AttachGuide(g)
	}
	sys.Start()
	return sys
}

// fswap boots a Fastswap node for a working set.
func fswap(eng *sim.Engine, wsPages uint64, frac float64) *fastswap.System {
	cores := 4
	if CoreCount > 0 {
		cores = CoreCount
	}
	sys := fastswap.New(eng, fastswap.Config{
		CacheFrames: frames(wsPages, frac),
		Cores:       cores,
		RemoteBytes: wsPages*fastswap.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		Tel:         recorderFor(),
		SampleEvery: SampleEvery,
	})
	sys.Start()
	return sys
}

// pfFor builds the prefetcher for a DiLOS flavour.
func pfFor(kind SystemKind) prefetch.Prefetcher {
	switch kind {
	case SysDiLOSRA, SysDiLOSTCP:
		return prefetch.NewReadahead(0)
	case SysDiLOSTrend:
		return prefetch.NewTrend()
	default:
		return nil
	}
}

// spaceLike abbreviates space.Space in the experiment closures.
type spaceLike = space.Space

// runOn runs fn on the named paging system and returns elapsed virtual
// time plus the fault counters — the common harness for Figures 7–9.
func runOn(kind SystemKind, wsPages uint64, frac float64,
	fn func(sp space.Space, mmap func(uint64) (uint64, error))) (sim.Time, int64, int64) {
	eng := sim.New()
	var elapsed sim.Time
	var major, minor int64
	switch kind {
	case SysFastswap:
		sys := fswap(eng, wsPages, frac)
		sys.Launch("app", 0, func(sp *fastswap.FSProc) {
			t0 := sp.Now()
			fn(sp, sys.MmapDDC)
			elapsed = sp.Now() - t0
		})
		eng.Run()
		major, minor = sys.MajorFaults.N, sys.MinorFaults.N
		collect(string(kind)+"/"+FracLabel(frac), sys)
	default:
		sys := dilos(eng, wsPages, frac, pfFor(kind), nil, nil, kind == SysDiLOSTCP)
		sys.Launch("app", 0, func(sp *core.DDCProc) {
			t0 := sp.Now()
			fn(sp, sys.MmapDDC)
			elapsed = sp.Now() - t0
		})
		eng.Run()
		major, minor = sys.MajorFaults.N, sys.MinorFaults.N
		collect(string(kind)+"/"+FracLabel(frac), sys)
	}
	return elapsed, major, minor
}
