package experiments

import (
	"dilos/internal/aifm"
	"dilos/internal/core"
	"dilos/internal/dataframe"
	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/gapbs"
	"dilos/internal/sim"
	"dilos/internal/snappy"
	"dilos/internal/space"
	"dilos/internal/workloads"
)

// This file regenerates the application benchmarks: Figures 7, 8, 9
// (§6.2).

// CompletionRow is one bar of Figures 7–9: a system × cache-fraction cell.
type CompletionRow struct {
	System   SystemKind
	Fraction float64
	Elapsed  sim.Time
	Check    uint64 // workload self-check value (must agree across systems)
}

// Fig7a reproduces Figure 7(a): quicksort completion time.
func Fig7a(sc Scale) []CompletionRow {
	wsPages := sc.QuicksortN * 8 / 4096
	var rows []CompletionRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSRA} {
		for _, frac := range CacheFractions {
			var check uint64
			elapsed, _, _ := runOn(kind, wsPages, frac,
				func(sp spaceLike, mmap func(uint64) (uint64, error)) {
					base, _ := mmap(wsPages + 16)
					workloads.FillRandomU64(sp, base, sc.QuicksortN, 7)
					workloads.Quicksort(sp, base, sc.QuicksortN)
					if !workloads.IsSorted(sp, base, sc.QuicksortN) {
						panic("fig7a: sort failed")
					}
					check = sp.LoadU64(base) ^ sp.LoadU64(base+(sc.QuicksortN-1)*8)
				})
			rows = append(rows, CompletionRow{kind, frac, elapsed, check})
		}
	}
	return rows
}

// Fig7b reproduces Figure 7(b): k-means completion time.
func Fig7b(sc Scale) []CompletionRow {
	cfg := workloads.DefaultKMeans(sc.KMeansPoints)
	pb, ab, db := workloads.KMeansLayout(cfg)
	wsPages := (pb + ab + db) / 4096
	var rows []CompletionRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSRA} {
		for _, frac := range CacheFractions {
			var check uint64
			var elapsed sim.Time
			runOn(kind, wsPages, frac,
				func(sp spaceLike, mmap func(uint64) (uint64, error)) {
					base, _ := mmap(wsPages + 16)
					workloads.KMeansInit(sp, base, cfg)
					elapsed, check = workloads.KMeans(sp, base, base+pb, base+pb+ab, cfg)
				})
			rows = append(rows, CompletionRow{kind, frac, elapsed, check})
		}
	}
	return rows
}

// snappyInput writes a compressible corpus of n bytes at base.
func snappyInput(sp space.Space, base, n uint64) {
	pattern := make([]byte, 4096)
	for i := range pattern {
		pattern[i] = byte((i / 7) % 251)
	}
	for off := uint64(0); off < n; off += 4096 {
		chunk := n - off
		if chunk > 4096 {
			chunk = 4096
		}
		sp.Store(base+off, pattern[:chunk])
	}
}

// Fig7c reproduces Figure 7(c): snappy compression completion time,
// including the AIFM port.
func Fig7c(sc Scale) []CompletionRow {
	n := sc.SnappyBytes
	wsPages := (3 * n) / 4096 // src + generous dst
	var rows []CompletionRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSRA, SysDiLOSTCP} {
		for _, frac := range CacheFractions {
			var check uint64
			elapsed, _, _ := runOn(kind, wsPages, frac,
				func(sp spaceLike, mmap func(uint64) (uint64, error)) {
					base, _ := mmap(wsPages + 16)
					src, dst := base, base+n+4096
					snappyInput(sp, src, n)
					check = snappy.Compress(sp, src, n, dst)
				})
			rows = append(rows, CompletionRow{kind, frac, elapsed, check})
		}
	}
	rows = append(rows, aifmSnappy(sc, false)...)
	return rows
}

// Fig7d reproduces Figure 7(d): snappy decompression completion time.
func Fig7d(sc Scale) []CompletionRow {
	n := sc.SnappyBytes
	wsPages := (3 * n) / 4096
	var rows []CompletionRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSRA, SysDiLOSTCP} {
		for _, frac := range CacheFractions {
			var check uint64
			var decompTime sim.Time
			_, _, _ = runOn(kind, wsPages, frac,
				func(sp spaceLike, mmap func(uint64) (uint64, error)) {
					base, _ := mmap(wsPages + 16)
					src, comp, back := base, base+n+4096, base+2*(n+4096)
					snappyInput(sp, src, n)
					cn := snappy.Compress(sp, src, n, comp)
					t0 := sp.Now()
					check = snappy.Decompress(sp, comp, cn, back)
					decompTime = sp.Now() - t0
				})
			rows = append(rows, CompletionRow{kind, frac, decompTime, check})
		}
	}
	rows = append(rows, aifmSnappy(sc, true)...)
	return rows
}

// aifmSnappy runs the AIFM port of the snappy workload: source and
// destination live in remoteable byte arrays.
func aifmSnappy(sc Scale, decompress bool) []CompletionRow {
	n := sc.SnappyBytes
	var rows []CompletionRow
	for _, frac := range CacheFractions {
		eng := sim.New()
		sys := aifm.New(eng, aifm.Config{
			LocalBytes:  uint64(float64(3*n) * frac),
			RemoteBytes: 4*n + (64 << 20),
			Fabric:      fabric.TCPParams(),
		})
		sys.Start()
		var elapsed sim.Time
		var check uint64
		sys.Launch("snappy", func(th *aifm.Thread) {
			src, _ := sys.NewArray(1, n)
			dst, _ := sys.NewArray(1, n+n/2+4096)
			pattern := make([]byte, 4096)
			for i := range pattern {
				pattern[i] = byte((i / 7) % 251)
			}
			for off := uint64(0); off < n; off += 4096 {
				chunk := n - off
				if chunk > 4096 {
					chunk = 4096
				}
				src.WriteBytes(th, off, pattern[:chunk])
			}
			asp := &aifmByteSpace{src: src, dst: dst, t: th}
			t0 := th.Now()
			cn := snappy.Compress(asp, 0, n, 1<<40)
			if decompress {
				back, _ := sys.NewArray(1, n)
				asp2 := &aifmByteSpace{src: dst, dst: back, t: th}
				t0 = th.Now() // time the decompression alone
				check = snappy.Decompress(asp2, 0, cn, 1<<40)
			} else {
				check = cn
			}
			elapsed = th.Now() - t0
		})
		eng.Run()
		collect("aifm.snappy/"+FracLabel(frac), sys)
		rows = append(rows, CompletionRow{SysAIFM, frac, elapsed, check})
	}
	return rows
}

// aifmByteSpace adapts two AIFM byte arrays to the snappy codec's Space
// usage: addresses below 1<<40 read the source array; addresses at or
// above it write the destination (this is the kind of porting shim AIFM
// applications actually need — the codec itself is unchanged).
type aifmByteSpace struct {
	src *aifm.Array
	dst *aifm.Array
	t   *aifm.Thread
}

const aifmDstBase = uint64(1) << 40

func (a *aifmByteSpace) Load(addr uint64, p []byte) {
	if addr >= aifmDstBase {
		a.dst.ReadBytes(a.t, addr-aifmDstBase, p)
		return
	}
	a.src.ReadBytes(a.t, addr, p)
}
func (a *aifmByteSpace) Store(addr uint64, p []byte) {
	if addr >= aifmDstBase {
		a.dst.WriteBytes(a.t, addr-aifmDstBase, p)
		return
	}
	a.src.WriteBytes(a.t, addr, p)
}
func (a *aifmByteSpace) LoadU64(addr uint64) uint64 {
	var b [8]byte
	a.Load(addr, b[:])
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
func (a *aifmByteSpace) StoreU64(addr uint64, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	a.Store(addr, b[:])
}
func (a *aifmByteSpace) LoadU32(addr uint64) uint32 {
	var b [4]byte
	a.Load(addr, b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func (a *aifmByteSpace) StoreU32(addr uint64, v uint32) {
	var b [4]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	a.Store(addr, b[:])
}
func (a *aifmByteSpace) LoadU8(addr uint64) byte {
	var b [1]byte
	a.Load(addr, b[:])
	return b[0]
}
func (a *aifmByteSpace) StoreU8(addr uint64, v byte) { a.Store(addr, []byte{v}) }
func (a *aifmByteSpace) Malloc(n uint64) uint64      { panic("aifm shim: no malloc") }
func (a *aifmByteSpace) Free(addr, n uint64)         {}
func (a *aifmByteSpace) Compute(d sim.Time)          { a.t.Compute(d) }
func (a *aifmByteSpace) Now() sim.Time               { return a.t.Now() }

// Fig8 reproduces Figure 8: the DataFrame NYC-taxi analysis across AIFM,
// DiLOS, DiLOS-TCP, and Fastswap.
func Fig8(sc Scale) []CompletionRow {
	rows8 := sc.DataframeRows
	wsPages := rows8 * 7 * 8 / 4096
	var rows []CompletionRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSRA, SysDiLOSTCP} {
		for _, frac := range CacheFractions {
			var check uint64
			var analysis sim.Time
			// Time only the analysis (the paper reports query completion),
			// not the data-set generation.
			runOn(kind, wsPages, frac,
				func(sp spaceLike, mmap func(uint64) (uint64, error)) {
					f := dataframe.NewSpaceFrame(sp, rows8)
					dataframe.Generate(f, 21)
					r := dataframe.RunTaxiAnalysis(sp, f)
					analysis = r.Elapsed
					check = r.Checksum
				})
			rows = append(rows, CompletionRow{kind, frac, analysis, check})
		}
	}
	// AIFM port.
	for _, frac := range CacheFractions {
		eng := sim.New()
		sys := aifm.New(eng, aifm.Config{
			LocalBytes:  uint64(float64(rows8*7*8) * frac),
			RemoteBytes: rows8*7*8 + (64 << 20),
			Fabric:      fabric.TCPParams(),
		})
		sys.Start()
		var analysis sim.Time
		var check uint64
		sys.Launch("df", func(th *aifm.Thread) {
			f, err := dataframe.NewAIFMFrame(sys, th, rows8)
			if err != nil {
				panic(err)
			}
			dataframe.Generate(f, 21)
			r := dataframe.RunTaxiAnalysis(th, f)
			analysis = r.Elapsed
			check = r.Checksum
		})
		eng.Run()
		collect("aifm.dataframe/"+FracLabel(frac), sys)
		rows = append(rows, CompletionRow{SysAIFM, frac, analysis, check})
	}
	return rows
}

// gapbsRun executes PR or BC with 4 worker threads on a paging system.
func gapbsRun(kind SystemKind, sc Scale, bc bool, frac float64) (sim.Time, uint64) {
	return gapbsRunWorkers(kind, sc, bc, frac, 4)
}

// gapbsRunWorkers is gapbsRun with a configurable thread count (the ext2
// thread-scaling extension).
func gapbsRunWorkers(kind SystemKind, sc Scale, bc bool, frac float64, workers int) (sim.Time, uint64) {
	eng := sim.New()
	scale := sc.GraphScale
	n := uint64(1) << scale
	// Working set: offsets + neighbours + kernel arrays.
	wsPages := (n*16*4+(n+1)*8)/4096 + n*8*uint64(3*workers+workers+2)/4096

	var graph *gapbs.Graph
	var scoreBase, contribBase, centralBase, workBase uint64
	spaces := make([]space.Space, workers)
	barrier := sim.NewBarrier(workers)
	ready := sim.NewBarrier(workers + 1)
	var elapsed sim.Time
	var check uint64
	start := sim.NewBarrier(workers)

	launch := func(launchFn func(name string, coreID int, fn func(sp space.Space))) {
		launchFn("builder", 0, func(sp space.Space) {
			graph = gapbs.BuildRMAT(sp, scale, 16, 31)
			scoreBase = sp.Malloc(n * 8)
			contribBase = sp.Malloc(n * 8)
			centralBase = sp.Malloc(uint64(workers) * n * 8)
			workBase = sp.Malloc(uint64(workers) * 3 * n * 8)
			ready.Wait(procOf(sp))
		})
		for w := 0; w < workers; w++ {
			w := w
			launchFn("worker", w, func(sp space.Space) {
				spaces[w] = sp
				ready.Wait(procOf(sp))
				start.Wait(procOf(sp))
				t0 := sp.Now()
				if bc {
					res := gapbs.BC(spaces, barrier, graph,
						[]uint64{3, 17, 29, 41}, centralBase, workBase, w)
					check += res.SumCentrality
				} else {
					_, sum := gapbs.PageRank(spaces, barrier, graph, 5, scoreBase, contribBase, w)
					check += sum
				}
				if d := sp.Now() - t0; d > elapsed {
					elapsed = d
				}
			})
		}
	}

	var src statsSource
	switch kind {
	case SysFastswap:
		sys := fswap(eng, wsPages, frac)
		src = sys
		launch(func(name string, coreID int, fn func(space.Space)) {
			sys.Launch(name, coreID, func(sp *fastswap.FSProc) { fn(sp) })
		})
	default:
		sys := dilos(eng, wsPages, frac, pfFor(kind), nil, nil, false)
		src = sys
		launch(func(name string, coreID int, fn func(space.Space)) {
			sys.Launch(name, coreID, func(sp *core.DDCProc) { fn(sp) })
		})
	}
	eng.Run()
	collect("gapbs/"+string(kind)+"/"+FracLabel(frac), src)
	return elapsed, check
}

func procOf(sp space.Space) *sim.Proc {
	type hasProc interface{ Proc() *sim.Proc }
	return sp.(hasProc).Proc()
}

// Fig9a reproduces Figure 9(a): GAPBS PageRank processing time, 4 threads.
func Fig9a(sc Scale) []CompletionRow {
	var rows []CompletionRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSRA} {
		for _, frac := range CacheFractions {
			elapsed, check := gapbsRun(kind, sc, false, frac)
			rows = append(rows, CompletionRow{kind, frac, elapsed, check})
		}
	}
	return rows
}

// Fig9b reproduces Figure 9(b): GAPBS betweenness centrality, 4 threads.
func Fig9b(sc Scale) []CompletionRow {
	var rows []CompletionRow
	for _, kind := range []SystemKind{SysFastswap, SysDiLOSRA} {
		for _, frac := range CacheFractions {
			elapsed, check := gapbsRun(kind, sc, true, frac)
			rows = append(rows, CompletionRow{kind, frac, elapsed, check})
		}
	}
	return rows
}
