//go:build race

package transport

// raceEnabled reports whether the race detector is compiled in; timing
// assertions skip under it (they would measure the instrumentation).
const raceEnabled = true
