package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"dilos/internal/memnode"
)

func startServer(t *testing.T) (*Server, string, *memnode.Node) {
	t.Helper()
	node := memnode.New(16<<20, 0xbeef)
	srv := NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, addr, node
}

func TestReadWriteRoundTrip(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base, err := c.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5a, 0xa5}, 2048)
	if err := c.Write(base, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := c.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data mismatch over the wire")
	}
}

func TestVectoredOps(t *testing.T) {
	_, addr, _ := startServer(t)
	c, _ := Dial(addr, 0xbeef)
	defer c.Close()
	base, _ := c.Alloc(1)
	segs := []Seg{{base + 0, 64}, {base + 1024, 128}, {base + 3000, 32}}
	bufs := [][]byte{
		bytes.Repeat([]byte{1}, 64),
		bytes.Repeat([]byte{2}, 128),
		bytes.Repeat([]byte{3}, 32),
	}
	if err := c.WriteV(segs, bufs); err != nil {
		t.Fatal(err)
	}
	got := [][]byte{make([]byte, 64), make([]byte, 128), make([]byte, 32)}
	if err := c.ReadV(segs, got); err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		if !bytes.Equal(got[i], bufs[i]) {
			t.Fatalf("segment %d mismatch", i)
		}
	}
	// The gap between segments must be untouched (zero).
	hole := make([]byte, 16)
	if err := c.Read(base+200, hole); err != nil {
		t.Fatal(err)
	}
	for _, b := range hole {
		if b != 0 {
			t.Fatal("vectored write leaked into the gap")
		}
	}
}

func TestProtectionKeyRejected(t *testing.T) {
	_, addr, _ := startServer(t)
	c, _ := Dial(addr, 0xdead) // wrong key
	defer c.Close()
	if err := c.Write(0, []byte{1}); err == nil {
		t.Fatal("wrong protection key accepted")
	}
	// The connection must still be usable for the next (failing) request —
	// stream stays in sync.
	if err := c.Read(0, make([]byte, 1)); err == nil {
		t.Fatal("wrong key accepted on read")
	}
}

func TestBoundsChecked(t *testing.T) {
	_, addr, node := startServer(t)
	c, _ := Dial(addr, 0xbeef)
	defer c.Close()
	if err := c.Read(node.Size()-1, make([]byte, 8)); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
}

func TestInfo(t *testing.T) {
	_, addr, node := startServer(t)
	c, _ := Dial(addr, 0xbeef)
	defer c.Close()
	c.Alloc(3)
	size, inUse, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if size != node.Size() || inUse != 3 {
		t.Fatalf("info = %d/%d", size, inUse)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, _ := startServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := Dial(addr, 0xbeef)
			if err != nil {
				errs[k] = err
				return
			}
			defer c.Close()
			base, err := c.Alloc(8)
			if err != nil {
				errs[k] = err
				return
			}
			rng := rand.New(rand.NewSource(int64(k)))
			for i := 0; i < 50; i++ {
				off := base + uint64(rng.Intn(8*4096-256))
				buf := make([]byte, rng.Intn(256)+1)
				rng.Read(buf)
				if err := c.Write(off, buf); err != nil {
					errs[k] = err
					return
				}
				got := make([]byte, len(buf))
				if err := c.Read(off, got); err != nil {
					errs[k] = err
					return
				}
				if !bytes.Equal(got, buf) {
					errs[k] = bytes.ErrTooLarge // sentinel
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", k, err)
		}
	}
}

// TestDeadServerSurfacesError is the regression test for the client
// hanging forever on a dead server: a listener that accepts but never
// responds must produce an error after a bounded delay, not a hang.
func TestDeadServerSurfacesError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, never answer
		}
	}()
	c, err := Dial(ln.Addr().String(), 0xbeef,
		WithDialTimeout(200*time.Millisecond), WithDeadline(200*time.Millisecond), WithRedials(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() { done <- c.Read(0, make([]byte, 8)) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read from a dead server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read from a dead server hung")
	}
}

// TestReconnectAfterConnectionDrop drops the client's first connection
// server-side; the client must redial transparently and complete the
// request on the fresh connection.
func TestReconnectAfterConnectionDrop(t *testing.T) {
	node := memnode.New(16<<20, 0xbeef)
	srv := NewServer(node)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if first {
				first = false
				conn.Close()
				continue
			}
			go srv.handle(conn)
		}
	}()
	c, err := Dial(ln.Addr().String(), 0xbeef,
		WithDialTimeout(time.Second), WithDeadline(time.Second), WithRedials(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := []byte{1, 2, 3, 4}
	if err := c.Write(0, want); err != nil {
		t.Fatalf("write after connection drop: %v", err)
	}
	got := make([]byte, 4)
	if err := c.Read(0, got); err != nil {
		t.Fatalf("read after connection drop: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data mismatch after reconnect")
	}
}

// TestStatusErrorsAreNotRetried checks that a daemon-side rejection (a
// bounds error) comes back as a StatusError immediately — the connection
// stays usable and no redial happens.
func TestStatusErrorsAreNotRetried(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Read(^uint64(0)-2, make([]byte, 8)) // overflow-probing offset
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusBounds {
		t.Fatalf("want StatusBounds, got %v", err)
	}
	// The same connection still serves valid requests.
	if err := c.Write(0, []byte{9}); err != nil {
		t.Fatalf("connection unusable after status error: %v", err)
	}
}
