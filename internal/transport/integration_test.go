package transport_test

import (
	"testing"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/memnode"
	"dilos/internal/prefetch"
	"dilos/internal/redis"
	"dilos/internal/sim"
	"dilos/internal/transport"
)

// startDaemon boots a real memnoded over loopback.
func startDaemon(t *testing.T, sizeMB uint64, pkey uint32) string {
	t.Helper()
	node := memnode.New(sizeMB<<20, pkey)
	srv := transport.NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestDiLOSOverRealTCPDaemon runs the complete LibOS — fault handler,
// prefetcher, cleaner, reclaimer — with every page living on a memnoded
// daemon reached over real TCP. The simulation supplies the timing; the
// data path leaves the process.
func TestDiLOSOverRealTCPDaemon(t *testing.T) {
	addr := startDaemon(t, 128, 0xd170)
	backing, err := transport.NewBacking(addr, 0xd170)
	if err != nil {
		t.Fatal(err)
	}
	defer backing.C.Close()

	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 64,
		Cores:       2,
		// RemoteBytes stays 0: the Backings size the pool.
		Fabric:     fabric.DefaultParams(),
		Prefetcher: prefetch.NewReadahead(0),
		Backings:   []core.Backing{backing},
	})
	sys.Start()

	const pages = 256 // 4x the cache: every page round-trips the network
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			t.Error(err)
			return
		}
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*core.PageSize, i*0x9e3779b97f4a7c15)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*core.PageSize); got != i*0x9e3779b97f4a7c15 {
				t.Errorf("page %d corrupted across the real network: %#x", i, got)
				return
			}
		}
	})
	eng.Run()

	if sys.MajorFaults.N == 0 || sys.Mgr.Evicted.N == 0 {
		t.Fatalf("no paging over the network: major=%d evicted=%d",
			sys.MajorFaults.N, sys.Mgr.Evicted.N)
	}
	// Confirm the data actually left the process.
	_, inUse, err := backing.C.Info()
	if err != nil {
		t.Fatal(err)
	}
	if inUse == 0 {
		t.Fatal("daemon reports no pages in use")
	}
}

// TestDiLOSShardedAcrossTwoDaemons stripes pages across two real daemons.
func TestDiLOSShardedAcrossTwoDaemons(t *testing.T) {
	a := startDaemon(t, 64, 0xaaaa)
	b := startDaemon(t, 64, 0xbbbb)
	ba, err := transport.NewBacking(a, 0xaaaa)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := transport.NewBacking(b, 0xbbbb)
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 64,
		Cores:       2,
		// RemoteBytes stays 0: the Backings size the pool.
		Fabric:   fabric.DefaultParams(),
		Backings: []core.Backing{ba, bb},
	})
	sys.Start()
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		base, _ := sys.MmapDDC(200)
		for i := uint64(0); i < 200; i++ {
			sp.StoreU64(base+i*core.PageSize, ^i)
		}
		for i := uint64(0); i < 200; i++ {
			if sp.LoadU64(base+i*core.PageSize) != ^i {
				t.Errorf("page %d corrupted", i)
				return
			}
		}
	})
	eng.Run()
	for name, bk := range map[string]*transport.Backing{"a": ba, "b": bb} {
		if _, inUse, _ := bk.C.Info(); inUse == 0 {
			t.Fatalf("shard %s unused", name)
		}
	}
}

// TestRedisOverRealTCPDaemon: the full Redis stack, guided allocator and
// all, with its keyspace on a real remote daemon.
func TestRedisOverRealTCPDaemon(t *testing.T) {
	addr := startDaemon(t, 256, 0xd170)
	backing, err := transport.NewBacking(addr, 0xd170)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 128,
		Cores:       2,
		// RemoteBytes stays 0: the Backings size the pool.
		Fabric:   fabric.DefaultParams(),
		Backings: []core.Backing{backing},
	})
	sys.Start()
	sys.Launch("redis", 0, func(sp *core.DDCProc) {
		srv := redis.NewServer(sp)
		const keys = 200
		redis.PopulateGET(srv, keys, redis.SizeFixed(4096))
		res := redis.RunGET(sp, srv, keys, 400, redis.SizeFixed(4096), 13)
		if res.BadValues != 0 {
			t.Errorf("bad values over the network: %d", res.BadValues)
		}
	})
	eng.Run()
}
