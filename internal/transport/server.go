package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dilos/internal/memnode"
)

// Server tuning. serverInflight bounds the parsed-but-unanswered requests
// per connection (each at most MaxReqBytes), which together with the fixed
// bufio buffers bounds per-connection memory; a client that outruns the
// server blocks in TCP, not in the daemon's heap.
const (
	serverShards   = 64
	serverWorkers  = 4
	serverInflight = 64
	// serverWriteTimeout bounds how long a response write may block on a
	// peer that stopped reading before the connection is abandoned.
	serverWriteTimeout = 60 * time.Second
)

// statusExec marks a parsed request that still needs executing (as opposed
// to one rejected at parse time, whose status byte is already decided).
const statusExec = 0xFF

// Server serves a memory node over TCP: protocol v2 (tagged, pipelined,
// out-of-order completions) with a per-connection fallback to the legacy
// v1 one-at-a-time framing. The region is guarded by a sharded lock — many
// connections make progress concurrently as long as their segments land on
// different shards — and allocation by a single small mutex (it is a
// setup-path operation).
type Server struct {
	node *memnode.Node

	shardSize uint64
	shards    []sync.RWMutex
	allocMu   sync.Mutex

	ln net.Listener

	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	draining atomic.Bool
	handlers sync.WaitGroup

	// Served-op counters. Atomic: every connection increments them.
	Reads, Writes, Pings, Batches atomic.Int64 // executed operations (per segment for R/W)
	Rejects                       atomic.Int64 // non-OK statuses (bad key/op/bounds/too-big)
	DrainedReqs                   atomic.Int64 // requests answered StatusDraining

	// ObserveLatency, when set before Serve, receives every request's
	// server-side execution latency in wall-clock nanoseconds. It is called
	// from connection handler goroutines concurrently — the observer must
	// do its own serialisation (memnoded funnels into its SLO monitor
	// through a channel). Nil costs the request path one predictable
	// branch.
	ObserveLatency func(ns int64)
}

// NewServer wraps a memory node.
func NewServer(node *memnode.Node) *Server {
	size := node.Size()
	shardSize := (size + serverShards - 1) / serverShards
	if shardSize < memnode.HugePageSize {
		shardSize = memnode.HugePageSize
	}
	n := int((size + shardSize - 1) / shardSize)
	if n < 1 {
		n = 1
	}
	return &Server{
		node:      node,
		shardSize: shardSize,
		shards:    make([]sync.RWMutex, n),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Listen binds the server; addr like ":7479". Returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.handlers.Done()
			defer s.dropConn(conn)
			s.handle(conn)
		}()
	}
}

// Draining reports whether the server has entered its drain phase.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs a graceful shutdown: stop accepting, answer every
// request parsed after this point with StatusDraining (requests already
// parsed off a stream complete normally — the flag is snapshot at parse
// time), wait up to grace for clients to hang up on their own, then close
// the stragglers and wait for every handler goroutine to exit.
//
// Connections that keep probing a draining server are answered, not hung
// up on — PING deliberately reports "alive but shutting down" so health
// monitors can distinguish a drain from a crash. Grace therefore bounds
// how long such lingering connections can hold the daemon open; clients
// that re-route on ErrDraining and close their end let Drain return
// early.
func (s *Server) Drain(grace time.Duration) {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		s.connMu.Lock()
		n := len(s.conns)
		s.connMu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.closeConns()
	s.handlers.Wait()
}

// Close stops the listener and closes every live connection, then waits
// for their handler goroutines — nothing leaks past Close.
func (s *Server) Close() error {
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.closeConns()
	s.handlers.Wait()
	return err
}

func (s *Server) closeConns() {
	s.connMu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// handle sniffs the protocol version from the first byte: v2 connections
// open with helloMagic, a v1 stream starts with an op byte.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == helloMagic[0] {
		var hello [4]byte
		if _, err := io.ReadFull(br, hello[:]); err != nil || hello != helloMagic {
			return
		}
		s.serveV2(conn, br)
		return
	}
	s.serveV1(conn, br)
}

// request is one parsed request plus its response frame, recycled through
// a per-connection free list so the hot path allocates nothing.
type request struct {
	tag      uint64
	op       byte
	pkey     uint32
	status   byte // statusExec, or a parse-time rejection
	draining bool // drain flag snapshot at parse time (see Drain)
	segs     []Seg
	buf      []byte // write payload (reused)
	out      []byte // response frame [tag][status][payload] (reused)
}

// growTo returns b resized to n bytes, reusing its capacity when possible.
func growTo(b []byte, n int) []byte {
	if cap(b) < n {
		nb := make([]byte, n)
		copy(nb, b)
		return nb
	}
	return b[:n]
}

// serveV2 runs the pipelined protocol on one connection: a reader parses
// frames into pooled requests, a small worker pool executes them under the
// region shard locks (hence out-of-order completions), and a writer
// serializes the tagged responses, flushing when its queue runs dry — the
// response-side doorbell.
func (s *Server) serveV2(conn net.Conn, br *bufio.Reader) {
	free := make(chan *request, serverInflight)
	reqs := make(chan *request, serverInflight)
	out := make(chan *request, serverInflight)
	for i := 0; i < serverInflight; i++ {
		free <- &request{}
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		dead := false
		for rq := range out {
			if !dead {
				conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
				_, err := bw.Write(rq.out)
				if err == nil && len(out) == 0 {
					err = bw.Flush()
				}
				if err != nil {
					conn.Close()
					dead = true
				}
			}
			free <- rq
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < serverWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rq := range reqs {
				s.execute(rq)
				out <- rq
			}
		}()
	}

	s.readLoopV2(br, free, reqs)
	close(reqs)
	wg.Wait()
	close(out)
	<-writerDone
}

func (s *Server) readLoopV2(br *bufio.Reader, free, reqs chan *request) {
	var hdr [reqHdrLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		pkey := binary.LittleEndian.Uint32(hdr[1:5])
		tag := binary.LittleEndian.Uint64(hdr[5:13])
		nsegs := int(binary.LittleEndian.Uint16(hdr[13:15]))
		if op == OpBatch {
			// The nsegs field carries the sub-op count. An oversized batch
			// is a protocol violation we cannot answer per-op, so it closes
			// the connection.
			if nsegs > MaxBatchOps {
				return
			}
			s.Batches.Add(1)
			ok := true
			for k := 0; k < nsegs && ok; k++ {
				var sub [subHdrLen]byte
				if _, err := io.ReadFull(br, sub[:]); err != nil {
					return
				}
				if sub[0] == OpBatch { // no nesting: the body shape is unknowable
					return
				}
				// Sub-ops are restricted to READ/WRITE/READV/WRITEV/PING
				// (wire.go): a smuggled ALLOC would leak its range on every
				// resend. The body still parses generically, so answer
				// StatusBadOp per-op and keep the stream usable.
				force := byte(statusExec)
				if !batchSubOpOK(sub[0]) {
					force = StatusBadOp
				}
				ok = s.readOne(br, free, reqs, sub[0], pkey, tag+uint64(k),
					int(binary.LittleEndian.Uint16(sub[1:3])), force)
			}
			if !ok {
				return
			}
			continue
		}
		if !s.readOne(br, free, reqs, op, pkey, tag, nsegs, statusExec) {
			return
		}
	}
}

// batchSubOpOK reports whether op may ride inside a doorbell frame: the
// wire contract restricts sub-ops to the idempotent data-path set.
func batchSubOpOK(op byte) bool {
	switch op {
	case OpRead, OpWrite, OpReadV, OpWriteV, OpPing:
		return true
	}
	return false
}

// readOne parses one request body off the stream into a pooled request and
// queues it for execution. Malformed requests (too many segments, segments
// or payloads beyond the caps) are fully consumed — discarded, never
// buffered — and answered with a status byte so the stream stays usable.
// status is statusExec for a request that should execute, or a parse-time
// rejection decided by the caller (still consumes the declared body).
// Only a broken stream returns false.
func (s *Server) readOne(br *bufio.Reader, free, reqs chan *request, op byte, pkey uint32, tag uint64, nsegs int, status byte) bool {
	rq := <-free
	rq.tag, rq.op, rq.pkey, rq.status = tag, op, pkey, status
	rq.draining = s.draining.Load()
	rq.segs = rq.segs[:0]
	if err := s.readBody(br, rq, nsegs); err != nil {
		free <- rq
		return false
	}
	reqs <- rq
	return true
}

// readBody reads nsegs segment headers and, for write ops, the payload.
// On a cap violation it sets rq.status to the rejection and discards the
// declared payload to keep the stream in sync.
func (s *Server) readBody(br *bufio.Reader, rq *request, nsegs int) error {
	var segHdr [segHdrLen]byte
	total := 0
	reject := byte(statusExec)
	if nsegs > MaxSegs {
		reject = StatusBadOp
	}
	for i := 0; i < nsegs; i++ {
		if _, err := io.ReadFull(br, segHdr[:]); err != nil {
			return err
		}
		off := binary.LittleEndian.Uint64(segHdr[:8])
		length := binary.LittleEndian.Uint32(segHdr[8:12])
		if length > MaxSegLen && reject == statusExec {
			reject = StatusTooBig
		}
		total += int(length)
		if reject == statusExec {
			rq.segs = append(rq.segs, Seg{Off: off, Len: length})
		}
	}
	if total > MaxReqBytes && reject == statusExec {
		reject = StatusTooBig
	}
	isWrite := rq.op == OpWrite || rq.op == OpWriteV
	if isWrite {
		if reject != statusExec {
			if _, err := io.CopyN(io.Discard, br, int64(total)); err != nil {
				return err
			}
		} else {
			rq.buf = growTo(rq.buf, total)
			if _, err := io.ReadFull(br, rq.buf); err != nil {
				return err
			}
		}
	}
	if reject != statusExec {
		rq.status = reject
		rq.segs = rq.segs[:0]
	}
	return nil
}

// execute resolves a request into its response frame.
func (s *Server) execute(rq *request) {
	var t0 time.Time
	if s.ObserveLatency != nil {
		t0 = time.Now()
	}
	rq.out = growTo(rq.out, respHdrLen)
	status := rq.status
	if status == statusExec {
		status = s.run(rq)
	}
	if s.ObserveLatency != nil {
		s.ObserveLatency(time.Since(t0).Nanoseconds())
	}
	if status != StatusOK {
		rq.out = rq.out[:respHdrLen]
		if status != StatusDraining {
			s.Rejects.Add(1)
		}
	}
	binary.LittleEndian.PutUint64(rq.out[:8], rq.tag)
	rq.out[8] = status
}

// shardSpan gives the closed shard-index interval covering the segments.
func (s *Server) shardSpan(segs []Seg) (lo, hi int) {
	lo, hi = int(segs[0].Off/s.shardSize), 0
	for _, sg := range segs {
		a := int(sg.Off / s.shardSize)
		b := int((sg.Off + uint64(sg.Len) - 1) / s.shardSize)
		if sg.Len == 0 {
			b = a
		}
		if a < lo {
			lo = a
		}
		if b > hi {
			hi = b
		}
	}
	if hi >= len(s.shards) {
		hi = len(s.shards) - 1
	}
	return lo, hi
}

// run executes a validated request, appending any response payload to
// rq.out past the header. Region access happens under the shard locks
// covering the request's span, taken in ascending order.
func (s *Server) run(rq *request) byte {
	// The drain decision was taken when the request was parsed, so a
	// request already queued when Drain flipped the flag completes
	// normally, as the Drain contract promises.
	if rq.draining {
		s.DrainedReqs.Add(1)
		return StatusDraining
	}
	if rq.pkey != s.node.ProtKey {
		return StatusBadKey
	}
	switch rq.op {
	case OpPing:
		s.Pings.Add(1)
		return StatusOK
	case OpRead, OpReadV:
		if len(rq.segs) == 0 {
			return StatusOK // zero-seg vectored op: nothing to copy, nothing to lock
		}
		for _, sg := range rq.segs {
			if s.node.CheckRange(sg.Off, uint64(sg.Len)) != nil {
				return StatusBounds
			}
		}
		rq.out = growTo(rq.out, respHdrLen+segsBytes(rq.segs))
		lo, hi := s.shardSpan(rq.segs)
		for i := lo; i <= hi; i++ {
			s.shards[i].RLock()
		}
		pos := respHdrLen
		for _, sg := range rq.segs {
			s.node.CopyOut(sg.Off, rq.out[pos:pos+int(sg.Len)])
			pos += int(sg.Len)
		}
		for i := hi; i >= lo; i-- {
			s.shards[i].RUnlock()
		}
		s.Reads.Add(int64(len(rq.segs)))
		return StatusOK
	case OpWrite, OpWriteV:
		if len(rq.segs) == 0 {
			return StatusOK
		}
		for _, sg := range rq.segs {
			if s.node.CheckRange(sg.Off, uint64(sg.Len)) != nil {
				return StatusBounds
			}
		}
		lo, hi := s.shardSpan(rq.segs)
		for i := lo; i <= hi; i++ {
			s.shards[i].Lock()
		}
		pos := 0
		for _, sg := range rq.segs {
			s.node.CopyIn(sg.Off, rq.buf[pos:pos+int(sg.Len)])
			pos += int(sg.Len)
		}
		for i := hi; i >= lo; i-- {
			s.shards[i].Unlock()
		}
		s.Writes.Add(int64(len(rq.segs)))
		return StatusOK
	case OpAlloc:
		// segs[0].Len carries the page count.
		if len(rq.segs) != 1 {
			return StatusBadOp
		}
		s.allocMu.Lock()
		base, err := s.node.AllocRange(uint64(rq.segs[0].Len))
		s.allocMu.Unlock()
		if err != nil {
			return StatusNoSpace
		}
		rq.out = growTo(rq.out, respHdrLen+8)
		binary.LittleEndian.PutUint64(rq.out[respHdrLen:], base)
		return StatusOK
	case OpInfo:
		rq.out = growTo(rq.out, respHdrLen+16)
		binary.LittleEndian.PutUint64(rq.out[respHdrLen:respHdrLen+8], s.node.Size())
		binary.LittleEndian.PutUint64(rq.out[respHdrLen+8:], uint64(s.node.PagesInUse()))
		return StatusOK
	default:
		return StatusBadOp
	}
}

// serveV1 runs the legacy one-request-at-a-time framing for v1 clients:
// [op u8][pkey u32][nsegs u16] requests answered by [status u8] responses
// in order. The body parser, executor (minus the 9-byte v2 header the
// response skips) and scratch reuse are shared with v2, so v1 connections
// get the sharded locks, the drain status and the tolerant handling of
// malformed requests for free.
func (s *Server) serveV1(conn net.Conn, br *bufio.Reader) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	rq := &request{}
	var hdr [7]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		rq.op = hdr[0]
		rq.pkey = binary.LittleEndian.Uint32(hdr[1:5])
		rq.tag = 0
		rq.status = statusExec
		rq.draining = s.draining.Load()
		rq.segs = rq.segs[:0]
		if rq.op == OpBatch { // v2-only frame on a v1 stream: protocol error
			return
		}
		if err := s.readBody(br, rq, int(binary.LittleEndian.Uint16(hdr[5:7]))); err != nil {
			return
		}
		s.execute(rq)
		if _, err := bw.Write(rq.out[8:]); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// StatusError is a non-OK response from the daemon: the request was
// received, parsed, and rejected (or refused because the daemon is
// draining). The connection stays usable, so the client does not retry
// these.
type StatusError struct {
	Op     string
	Status byte
}

func (e *StatusError) Error() string {
	if e.Status == StatusDraining {
		return fmt.Sprintf("transport: %s refused: server draining", e.Op)
	}
	return fmt.Sprintf("transport: %s failed with status %d", e.Op, e.Status)
}

// Is maps a draining status onto the ErrDraining sentinel so callers can
// errors.Is for it without digging out the status byte.
func (e *StatusError) Is(target error) bool {
	return target == ErrDraining && e.Status == StatusDraining
}

func statusErr(op string, status byte) error {
	if status == StatusOK {
		return nil
	}
	return &StatusError{Op: op, Status: status}
}

func opName(op byte) string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReadV:
		return "readv"
	case OpWriteV:
		return "writev"
	case OpAlloc:
		return "alloc"
	case OpInfo:
		return "info"
	case OpPing:
		return "ping"
	case OpBatch:
		return "batch"
	}
	return fmt.Sprintf("op%d", op)
}
