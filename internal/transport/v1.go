// Legacy protocol v1: one connection, one outstanding request. A v1
// request carries no tag — [op u8][pkey u32][nsegs u16], segments, write
// payloads — and the response is a bare status byte plus payload. Server
// still speaks it (per-connection version sniffing), and V1Client is kept
// as the baseline the pipelined v2 Client is measured against in ext9.

package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// V1Client is a computing-node-side connection speaking protocol v1.
// Every request runs under an I/O deadline; a timed-out or broken
// connection is torn down and redialed with exponential backoff, and the
// whole request is resent on the fresh connection (safe because the
// protocol is stateless per message). A dead server therefore surfaces as
// an error after a bounded delay instead of blocking forever.
type V1Client struct {
	addr        string
	pkey        uint32
	dialTimeout time.Duration
	ioTimeout   time.Duration
	redials     int

	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	scratch []byte // reused WriteV payload assembly buffer
}

// DialV1 connects to a memory node daemon with the default timeouts.
func DialV1(addr string, pkey uint32) (*V1Client, error) {
	c := &V1Client{
		addr:        addr,
		pkey:        pkey,
		dialTimeout: DefaultDialTimeout,
		ioTimeout:   DefaultIOTimeout,
		redials:     DefaultRedials,
	}
	c.mu.Lock()
	err := c.ensure()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// SetTimeouts adjusts the deadline and reconnection policy: zero durations
// keep the current values, a negative redials disables reconnection
// entirely, redials >= 0 sets the redial attempt count.
func (c *V1Client) SetTimeouts(dial, io time.Duration, redials int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dial > 0 {
		c.dialTimeout = dial
	}
	if io > 0 {
		c.ioTimeout = io
	}
	if redials < 0 {
		c.redials = 0
	} else {
		c.redials = redials
	}
}

// Close tears the connection down.
func (c *V1Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.r, c.w = nil, nil, nil
	return err
}

// ensure dials if the client has no live connection. Caller holds c.mu.
func (c *V1Client) ensure() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 64<<10)
	c.w = bufio.NewWriterSize(conn, 64<<10)
	return nil
}

// teardown drops a connection in an unknown state. Caller holds c.mu.
func (c *V1Client) teardown() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.r, c.w = nil, nil, nil
	}
}

// transact runs one request/response exchange under the deadline and
// reconnection policy. recv consumes the response (status byte already
// read) through c.r.
func (c *V1Client) transact(opName string, op byte, segs []Seg, payload []byte, recv func(status byte) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transactLocked(opName, op, segs, payload, recv)
}

// transactLocked is transact with c.mu already held.
func (c *V1Client) transactLocked(opName string, op byte, segs []Seg, payload []byte, recv func(status byte) error) error {
	backoff := redialBackoffBase
	var lastErr error
	for attempt := 0; attempt <= c.redials; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > redialBackoffCap {
				backoff = redialBackoffCap
			}
		}
		if err := c.ensure(); err != nil {
			lastErr = err
			continue
		}
		if c.ioTimeout > 0 {
			c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
		}
		status, err := c.request(op, segs, payload)
		if err == nil {
			if err = recv(status); err == nil {
				return nil
			}
			var se *StatusError
			if errors.As(err, &se) {
				return err // daemon answered; the stream is in sync
			}
		}
		// Timeout or broken pipe mid-exchange: the stream position is
		// unknown, so drop the connection and resend the whole request on
		// a fresh one.
		lastErr = err
		c.teardown()
	}
	return fmt.Errorf("transport: %s %s: %w", opName, c.addr, lastErr)
}

func (c *V1Client) request(op byte, segs []Seg, payload []byte) (byte, error) {
	var hdr [7]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], c.pkey)
	binary.LittleEndian.PutUint16(hdr[5:7], uint16(len(segs)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	var segHdr [segHdrLen]byte
	for _, sg := range segs {
		binary.LittleEndian.PutUint64(segHdr[:8], sg.Off)
		binary.LittleEndian.PutUint32(segHdr[8:12], sg.Len)
		if _, err := c.w.Write(segHdr[:]); err != nil {
			return 0, err
		}
	}
	if payload != nil {
		if _, err := c.w.Write(payload); err != nil {
			return 0, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	return status, nil
}

// Read performs a one-sided READ into p.
func (c *V1Client) Read(off uint64, p []byte) error {
	return c.transact("read", OpRead, []Seg{{off, uint32(len(p))}}, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("read", status)
		}
		_, err := io.ReadFull(c.r, p)
		return err
	})
}

// Write performs a one-sided WRITE of p.
func (c *V1Client) Write(off uint64, p []byte) error {
	return c.transact("write", OpWrite, []Seg{{off, uint32(len(p))}}, p, func(status byte) error {
		return statusErr("write", status)
	})
}

// ReadV performs a vectored READ; bufs[i] receives segs[i].
func (c *V1Client) ReadV(segs []Seg, bufs [][]byte) error {
	return c.transact("readv", OpReadV, segs, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("readv", status)
		}
		for _, b := range bufs {
			if _, err := io.ReadFull(c.r, b); err != nil {
				return err
			}
		}
		return nil
	})
}

// WriteV performs a vectored WRITE of bufs to segs. The payload is
// assembled into a scratch buffer that survives across calls (grown, never
// re-allocated per request — the resend path needs a stable copy).
func (c *V1Client) WriteV(segs []Seg, bufs [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	c.scratch = growTo(c.scratch, total)
	n := 0
	for _, b := range bufs {
		n += copy(c.scratch[n:], b)
	}
	return c.transactLocked("writev", OpWriteV, segs, c.scratch[:total], func(status byte) error {
		return statusErr("writev", status)
	})
}

// Alloc reserves a contiguous range of pages, returning the base offset.
func (c *V1Client) Alloc(pages uint32) (uint64, error) {
	var base uint64
	err := c.transact("alloc", OpAlloc, []Seg{{0, pages}}, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("alloc", status)
		}
		var out [8]byte
		if _, err := io.ReadFull(c.r, out[:]); err != nil {
			return err
		}
		base = binary.LittleEndian.Uint64(out[:])
		return nil
	})
	return base, err
}

// Info returns the region size and pages in use.
func (c *V1Client) Info() (size uint64, inUse uint64, err error) {
	err = c.transact("info", OpInfo, nil, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("info", status)
		}
		var out [16]byte
		if _, err := io.ReadFull(c.r, out[:]); err != nil {
			return err
		}
		size = binary.LittleEndian.Uint64(out[:8])
		inUse = binary.LittleEndian.Uint64(out[8:])
		return nil
	})
	return size, inUse, err
}
