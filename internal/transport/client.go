package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors. ErrDraining also matches StatusError responses carrying
// StatusDraining (via StatusError.Is), so errors.Is(err, ErrDraining)
// works on both paths.
var (
	ErrClosed      = errors.New("transport: client closed")
	ErrBreakerOpen = errors.New("transport: circuit breaker open")
	ErrDraining    = errors.New("transport: server draining")
	ErrDeadline    = errors.New("transport: request deadline exceeded")
)

// ClientStats counts the client's fault-handling outcomes, mirroring the
// simulator's retry.*/health.* counters for the real transport. All fields
// are atomics; Snapshot folds them into transport.* keys for -stats.
type ClientStats struct {
	Sent         atomic.Int64 // requests submitted
	Completed    atomic.Int64 // requests finished (any outcome)
	Retries      atomic.Int64 // requests rewritten onto a fresh connection
	Redials      atomic.Int64 // dial attempts after losing a connection
	Timeouts     atomic.Int64 // requests failed on their deadline budget
	StatusErrors atomic.Int64 // non-OK statuses from the daemon
	DrainingSeen atomic.Int64 // StatusDraining responses
	BreakerTrips atomic.Int64 // circuit breaker open transitions
	BreakerFast  atomic.Int64 // submissions failed fast on an open breaker
	BreakerProbe atomic.Int64 // half-open trial requests admitted
	Recoveries   atomic.Int64 // breaker closed again after a probe succeeded
	LateDrained  atomic.Int64 // late responses for budget-expired tags drained off a live connection
	Inflight     atomic.Int64 // current in-flight requests
	InflightPeak atomic.Int64 // high-water mark of Inflight
}

// Snapshot returns the counters under their transport.* registry names.
func (st *ClientStats) Snapshot() map[string]int64 {
	return map[string]int64{
		"transport.sent":             st.Sent.Load(),
		"transport.completed":        st.Completed.Load(),
		"transport.retries":          st.Retries.Load(),
		"transport.redials":          st.Redials.Load(),
		"transport.timeouts":         st.Timeouts.Load(),
		"transport.status_errors":    st.StatusErrors.Load(),
		"transport.draining":         st.DrainingSeen.Load(),
		"transport.breaker.trips":    st.BreakerTrips.Load(),
		"transport.breaker.fast":     st.BreakerFast.Load(),
		"transport.breaker.probes":   st.BreakerProbe.Load(),
		"transport.breaker.recovers": st.Recoveries.Load(),
		"transport.late_drained":     st.LateDrained.Load(),
		"transport.inflight":         st.Inflight.Load(),
		"transport.inflight.peak":    st.InflightPeak.Load(),
	}
}

func (st *ClientStats) track(d int64) {
	v := st.Inflight.Add(d)
	for {
		peak := st.InflightPeak.Load()
		if v <= peak || st.InflightPeak.CompareAndSwap(peak, v) {
			return
		}
	}
}

// Option configures a Client.
type Option func(*Client)

// WithLanes sets the connection count; requests round-robin across lanes.
func WithLanes(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.laneCount = n
		}
	}
}

// WithDepth sets the per-lane in-flight cap (the pipeline window).
func WithDepth(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.depth = n
		}
	}
}

// WithDeadline sets the per-request budget: dialing, waiting for a slot,
// redials and resends all happen inside it.
func WithDeadline(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.deadline = d
		}
	}
}

// WithDialTimeout bounds one dial attempt.
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithRedials caps consecutive failed dial attempts before the lane fails
// its pending requests (their budgets usually expire first). 0 disables
// reconnection entirely.
func WithRedials(n int) Option {
	return func(c *Client) { c.redials = n }
}

// WithBreaker arms the circuit breaker: threshold consecutive
// transport-level failures open it for cooldown, during which submissions
// fail fast with ErrBreakerOpen; afterwards a single trial request probes
// the server, closing the breaker on success. threshold <= 0 disables it.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		c.brkThreshold = threshold
		c.brkCooldown = cooldown
	}
}

// Breaker states.
const (
	brkClosed = iota
	brkOpen
	brkHalfOpen
)

// Client is a computing-node-side connection to a memory node daemon,
// speaking protocol v2: each lane is one TCP connection carrying up to
// `depth` tagged requests at once, completed out of order by the server.
// A lost connection is redialed with jittered exponential backoff and the
// still-pending requests are resent by tag — safe because every operation
// except ALLOC is idempotent (a resent ALLOC may leak its first range on
// the daemon; it is a setup-path call, so the leak is bounded and the
// returned range is always valid). Every request carries a deadline
// budget; when it expires the request fails with a bounded error instead
// of blocking. A circuit breaker mirrors core.HealthMonitor: consecutive
// transport failures trip it, submissions then fail fast, and a probe
// closes it once the daemon answers again.
type Client struct {
	addr string
	pkey uint32

	dialTimeout time.Duration
	deadline    time.Duration
	depth       int
	laneCount   int
	redials     int

	brkThreshold int
	brkCooldown  time.Duration
	brkMu        sync.Mutex
	brkState     int
	brkFails     int
	brkOpenUntil time.Time

	lanes    []*lane
	nextLane atomic.Uint32

	closed    atomic.Bool
	closedCh  chan struct{}
	closeOnce sync.Once

	Stats ClientStats
}

// call is one in-flight request. Instances are pooled; seg1/buf1 back the
// common single-segment case without allocating.
type call struct {
	op       byte
	segs     []Seg
	payload  [][]byte // write sources
	bufs     [][]byte // read destinations
	scratch  [16]byte // ALLOC/INFO response payload
	tag      uint64
	deadline time.Time
	done     chan struct{} // buffered(1); completion sends exactly once
	status   byte
	err      error

	seg1 [1]Seg
	buf1 [1][]byte
}

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan struct{}, 1)}
}}

func getCall() *call {
	cl := callPool.Get().(*call)
	cl.err = nil
	cl.status = StatusOK
	cl.payload = nil
	cl.bufs = nil
	return cl
}

// lane is one connection plus its pipeline bookkeeping.
type lane struct {
	c *Client

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	gen     uint64
	pending map[uint64]*call
	expired map[uint64]int // budget-expired tags → OK-payload bytes still owed on this conn
	nextTag uint64
	dialing bool
	readers sync.WaitGroup // live reader goroutines (at most one per generation)

	slots    chan struct{} // depth tokens; a token per in-flight call
	submitMu sync.Mutex    // fairness: batch slot acquisition is atomic
	wake     chan struct{} // nudges an idle reader
}

// Dial connects to a memory node daemon. The first lane is dialed eagerly
// so an unreachable daemon fails here; further lanes dial on first use.
func Dial(addr string, pkey uint32, opts ...Option) (*Client, error) {
	c := &Client{
		addr:        addr,
		pkey:        pkey,
		dialTimeout: DefaultDialTimeout,
		deadline:    DefaultDeadline,
		depth:       32,
		laneCount:   1,
		redials:     DefaultRedials,
		closedCh:    make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	c.lanes = make([]*lane, c.laneCount)
	for i := range c.lanes {
		l := &lane{
			c:       c,
			pending: make(map[uint64]*call),
			expired: make(map[uint64]int),
			slots:   make(chan struct{}, c.depth),
			wake:    make(chan struct{}, 1),
		}
		for k := 0; k < c.depth; k++ {
			l.slots <- struct{}{}
		}
		c.lanes[i] = l
	}
	if err := c.lanes[0].dial(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears every lane down and fails all pending requests. Pending
// calls are failed only after the lane's reader has exited: the reader
// copies response payloads straight into caller buffers, so completing a
// call while it is still copying would return a buffer to the caller
// that is being concurrently written.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.closeOnce.Do(func() { close(c.closedCh) })
	for _, l := range c.lanes {
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
			l.conn, l.w = nil, nil
			l.gen++
		}
		l.mu.Unlock()
		l.readers.Wait() // reader exits promptly: its conn is closed
		l.mu.Lock()
		for tag, cl := range l.pending {
			delete(l.pending, tag)
			l.finish(cl, 0, ErrClosed)
		}
		l.mu.Unlock()
	}
	return nil
}

// Addr returns the daemon address this client targets.
func (c *Client) Addr() string { return c.addr }

// dial establishes the lane's connection and starts its reader.
// Callers must not hold l.mu.
func (l *lane) dial() error {
	conn, err := net.DialTimeout("tcp", l.c.addr, l.c.dialTimeout)
	if err != nil {
		return err
	}
	if _, err := conn.Write(helloMagic[:]); err != nil {
		conn.Close()
		return err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	l.mu.Lock()
	l.gen++
	gen := l.gen
	l.conn = conn
	l.w = bufio.NewWriterSize(conn, 64<<10)
	clear(l.expired) // late responses can only arrive on the conn that saw the request
	l.readers.Add(1)
	l.mu.Unlock()
	go l.reader(conn, br, gen)
	return nil
}

// breakerAllow gates a submission through the breaker state machine.
func (c *Client) breakerAllow() error {
	if c.brkThreshold <= 0 {
		return nil
	}
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	switch c.brkState {
	case brkClosed:
		return nil
	case brkOpen:
		if time.Now().Before(c.brkOpenUntil) {
			c.Stats.BreakerFast.Add(1)
			return ErrBreakerOpen
		}
		c.brkState = brkHalfOpen
		c.Stats.BreakerProbe.Add(1)
		return nil // this request is the probe
	default: // half-open: one probe already in flight
		c.Stats.BreakerFast.Add(1)
		return ErrBreakerOpen
	}
}

// breakerResult feeds a request's transport-level outcome back. Status
// errors count as successes: the daemon answered, so the path is healthy.
func (c *Client) breakerResult(failed bool) {
	if c.brkThreshold <= 0 {
		return
	}
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	if failed {
		switch c.brkState {
		case brkClosed:
			c.brkFails++
			if c.brkFails >= c.brkThreshold {
				c.brkState = brkOpen
				c.brkOpenUntil = time.Now().Add(c.brkCooldown)
				c.Stats.BreakerTrips.Add(1)
			}
		case brkHalfOpen: // probe failed: reopen
			c.brkState = brkOpen
			c.brkOpenUntil = time.Now().Add(c.brkCooldown)
			c.Stats.BreakerTrips.Add(1)
		}
		return
	}
	if c.brkState == brkHalfOpen {
		c.Stats.Recoveries.Add(1)
	}
	c.brkState = brkClosed
	c.brkFails = 0
}

// lane picks the next lane round-robin.
func (c *Client) lane() *lane {
	return c.lanes[int(c.nextLane.Add(1))%len(c.lanes)]
}

// submit registers the call on a lane and writes its frame (or kicks the
// redialer if the lane is down). It blocks while the pipeline window is
// full, but never past the call's deadline.
func (c *Client) submit(l *lane, cl *call) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.breakerAllow(); err != nil {
		return err
	}
	cl.deadline = time.Now().Add(c.deadline)
	if err := l.acquire(1, cl.deadline); err != nil {
		c.breakerResult(true)
		return err
	}
	c.Stats.Sent.Add(1)
	c.Stats.track(1)
	l.mu.Lock()
	cl.tag = l.nextTag
	l.nextTag++
	l.pending[cl.tag] = cl
	l.writeOrKickLocked(cl)
	l.mu.Unlock()
	l.nudge()
	return nil
}

// acquire takes n pipeline slots, bounded by the deadline. submitMu makes
// multi-slot (doorbell) acquisition atomic so two batches cannot deadlock
// each other holding half their slots.
func (l *lane) acquire(n int, deadline time.Time) error {
	l.submitMu.Lock()
	defer l.submitMu.Unlock()
	var timer *time.Timer
	for k := 0; k < n; k++ {
		select {
		case <-l.slots: // fast path: no timer allocation
			continue
		default:
		}
		if timer == nil {
			timer = time.NewTimer(time.Until(deadline))
			defer timer.Stop()
		}
		select {
		case <-l.slots:
		case <-l.c.closedCh:
			l.release(k)
			return ErrClosed
		case <-timer.C:
			l.release(k)
			l.c.Stats.Timeouts.Add(1)
			return fmt.Errorf("transport: %s: pipeline full past budget: %w", l.c.addr, ErrDeadline)
		}
	}
	return nil
}

func (l *lane) release(n int) {
	for k := 0; k < n; k++ {
		l.slots <- struct{}{}
	}
}

// writeOrKickLocked writes the call's frame if the lane is connected and
// flushes; on a write error or a down lane it starts the redialer, which
// will resend the (already registered) call. Caller holds l.mu.
func (l *lane) writeOrKickLocked(cl *call) {
	if l.conn != nil {
		if err := l.writeCallLocked(cl); err == nil {
			err = l.w.Flush()
			if err == nil {
				return
			}
		}
		l.conn.Close()
		l.conn, l.w = nil, nil
		l.gen++
	}
	if !l.dialing {
		l.dialing = true
		go l.redial()
	}
}

// writeCallLocked frames one call onto the lane's writer (no flush).
func (l *lane) writeCallLocked(cl *call) error {
	var hdr [reqHdrLen]byte
	hdr[0] = cl.op
	binary.LittleEndian.PutUint32(hdr[1:5], l.c.pkey)
	binary.LittleEndian.PutUint64(hdr[5:13], cl.tag)
	binary.LittleEndian.PutUint16(hdr[13:15], uint16(len(cl.segs)))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	return l.writeBodyLocked(cl)
}

// writeBodyLocked frames the segments and, for writes, streams the payload
// buffers straight onto the wire — no intermediate copy.
func (l *lane) writeBodyLocked(cl *call) error {
	var segHdr [segHdrLen]byte
	for _, sg := range cl.segs {
		binary.LittleEndian.PutUint64(segHdr[:8], sg.Off)
		binary.LittleEndian.PutUint32(segHdr[8:12], sg.Len)
		if _, err := l.w.Write(segHdr[:]); err != nil {
			return err
		}
	}
	for _, p := range cl.payload {
		if _, err := l.w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// nudge wakes the lane's reader if it is idle.
func (l *lane) nudge() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// finish completes a call exactly once. Caller holds l.mu and has already
// removed it from pending.
func (l *lane) finish(cl *call, status byte, err error) {
	cl.status = status
	cl.err = err
	cl.done <- struct{}{}
	l.slots <- struct{}{}
	l.c.Stats.track(-1)
	l.c.Stats.Completed.Add(1)
}

// readQuantum is the reader's wake-up granularity while blocked on the
// socket: on each quantum it sweeps for requests whose budget ran out. It
// bounds deadline overshoot without scanning the pending set per response.
const readQuantum = 50 * time.Millisecond

var errMute = errors.New("no response within budget")

// reader demultiplexes one connection's responses by tag until the
// connection dies. It blocks in quanta: a clean timeout between frames
// just sweeps expired budgets and keeps reading; a timeout mid-frame means
// the stream position is unknown, so the connection is torn down and the
// survivors resent.
func (l *lane) reader(conn net.Conn, br *bufio.Reader, gen uint64) {
	defer l.readers.Done()
	var hdr [respHdrLen]byte
	for {
		l.mu.Lock()
		if l.gen != gen {
			l.mu.Unlock()
			return
		}
		n := len(l.pending)
		l.mu.Unlock()
		if n == 0 {
			select {
			case <-l.wake:
				continue
			case <-l.c.closedCh:
				return
			}
		}
		conn.SetReadDeadline(time.Now().Add(readQuantum))
		if nr, err := io.ReadFull(br, hdr[:]); err != nil {
			var ne net.Error
			if nr == 0 && errors.As(err, &ne) && ne.Timeout() {
				// Clean inter-frame timeout: nothing consumed, the stream
				// is still in sync. Fail overdue budgets, keep reading.
				l.mu.Lock()
				if l.gen != gen {
					l.mu.Unlock()
					return
				}
				l.expireLocked(errMute)
				l.mu.Unlock()
				continue
			}
			l.ioError(conn, gen, err)
			return
		}
		tag := binary.LittleEndian.Uint64(hdr[:8])
		status := hdr[8]
		l.mu.Lock()
		cl := l.pending[tag]
		l.mu.Unlock()
		if cl == nil {
			// Not pending: either a tag whose budget already expired (the
			// server answered late) or a genuine protocol error. Draining
			// the late response keeps the connection alive, so one slow
			// request cannot trigger a teardown that resends everything
			// else in flight.
			l.mu.Lock()
			owed, late := l.expired[tag]
			delete(l.expired, tag)
			l.mu.Unlock()
			if !late {
				l.ioError(conn, gen, fmt.Errorf("transport: response for unknown tag %d", tag))
				return
			}
			l.c.Stats.LateDrained.Add(1)
			if status == StatusOK && owed > 0 {
				conn.SetReadDeadline(time.Now().Add(l.c.deadline + readQuantum))
				if _, err := io.CopyN(io.Discard, br, int64(owed)); err != nil {
					l.ioError(conn, gen, err)
					return
				}
			}
			continue
		}
		if status == StatusOK {
			// The payload follows immediately; give it the full budget (a
			// mid-payload stall is a broken peer, not inter-frame idleness).
			conn.SetReadDeadline(time.Now().Add(l.c.deadline + readQuantum))
			if err := l.readPayload(br, cl); err != nil {
				l.ioError(conn, gen, err)
				return
			}
		}
		l.mu.Lock()
		if _, ok := l.pending[tag]; ok {
			delete(l.pending, tag)
			l.finish(cl, status, nil)
		}
		l.mu.Unlock()
	}
}

// readPayload consumes a successful response's payload into the call's
// destination buffers.
func (l *lane) readPayload(br *bufio.Reader, cl *call) error {
	switch cl.op {
	case OpRead, OpReadV:
		for _, b := range cl.bufs {
			if _, err := io.ReadFull(br, b); err != nil {
				return err
			}
		}
	case OpAlloc:
		if _, err := io.ReadFull(br, cl.scratch[:8]); err != nil {
			return err
		}
	case OpInfo:
		if _, err := io.ReadFull(br, cl.scratch[:16]); err != nil {
			return err
		}
	}
	return nil
}

// ioError tears the connection down after a read failure and hands the
// pending calls to the redialer.
func (l *lane) ioError(conn net.Conn, gen uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen != gen {
		return // a newer connection took over already
	}
	l.gen++
	conn.Close()
	l.conn, l.w = nil, nil
	l.expireLocked(err)
	if len(l.pending) > 0 && !l.dialing && !l.c.closed.Load() {
		l.dialing = true
		go l.redial()
	}
}

// expiredTagCap bounds the expired-tag table. Tags are monotonic and
// never reused, so evicting an arbitrary entry can only cause a spurious
// teardown if a response arrives later than expiredTagCap successors —
// a black-holing server, which teardown handles anyway.
const expiredTagCap = 1024

// expireLocked fails every call whose budget has run out. While the
// connection is still up, the expired tag is remembered (with the
// payload length an OK response would carry) so the reader can drain a
// late answer instead of treating it as an unknown tag.
func (l *lane) expireLocked(cause error) {
	now := time.Now()
	for tag, cl := range l.pending {
		if now.After(cl.deadline) {
			delete(l.pending, tag)
			if l.conn != nil {
				if len(l.expired) >= expiredTagCap {
					for t := range l.expired {
						delete(l.expired, t)
						break
					}
				}
				l.expired[tag] = respPayloadLen(cl.op, cl.segs)
			}
			l.c.Stats.Timeouts.Add(1)
			l.finish(cl, 0, fmt.Errorf("transport: %s %s: budget exhausted (%v): %w",
				opName(cl.op), l.c.addr, cause, ErrDeadline))
		}
	}
}

// redial reconnects a lane with jittered exponential backoff and resends
// every still-pending call by tag on the fresh connection. It gives up
// when the pending set drains (all budgets expired) or after the
// configured attempt cap, failing whatever remains.
func (l *lane) redial() {
	backoff := redialBackoffBase
	attempts := 0
	var lastErr error = errors.New("connection lost")
	for {
		if l.c.closed.Load() {
			l.failAllPending(ErrClosed)
			return
		}
		l.mu.Lock()
		l.expireLocked(lastErr)
		if len(l.pending) == 0 {
			l.dialing = false
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
		if l.c.redials >= 0 && attempts > l.c.redials {
			l.failAllPending(fmt.Errorf("transport: %s: redials exhausted: %w", l.c.addr, lastErr))
			return
		}

		l.c.Stats.Redials.Add(1)
		attempts++
		conn, err := net.DialTimeout("tcp", l.c.addr, l.c.dialTimeout)
		if err == nil {
			_, err = conn.Write(helloMagic[:])
			if err != nil {
				conn.Close()
			}
		}
		if err != nil {
			lastErr = err
			// Half fixed, half jittered: spreads synchronized redialers,
			// like fabric.ReliableQP's backoff. Clamped to the soonest
			// pending budget so a request never overshoots its deadline
			// by a whole backoff period.
			sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			l.mu.Lock()
			for _, cl := range l.pending {
				if until := time.Until(cl.deadline) + 5*time.Millisecond; until < sleep {
					sleep = until
				}
			}
			l.mu.Unlock()
			if sleep > 0 {
				time.Sleep(sleep)
			}
			backoff *= 2
			if backoff > redialBackoffCap {
				backoff = redialBackoffCap
			}
			continue
		}

		br := bufio.NewReaderSize(conn, 64<<10)
		l.mu.Lock()
		if l.c.closed.Load() { // Close raced the dial: don't leak the conn
			conn.Close()
			l.mu.Unlock()
			l.failAllPending(ErrClosed)
			return
		}
		l.gen++
		gen := l.gen
		l.conn = conn
		l.w = bufio.NewWriterSize(conn, 64<<10)
		clear(l.expired) // stale: they belonged to the previous connection
		resendErr := error(nil)
		for _, cl := range l.pending {
			if resendErr = l.writeCallLocked(cl); resendErr != nil {
				break
			}
			l.c.Stats.Retries.Add(1)
		}
		if resendErr == nil {
			resendErr = l.w.Flush()
		}
		if resendErr != nil {
			lastErr = resendErr
			conn.Close()
			l.conn, l.w = nil, nil
			l.mu.Unlock()
			continue
		}
		l.dialing = false
		l.readers.Add(1)
		l.mu.Unlock()
		go l.reader(conn, br, gen)
		return
	}
}

// failAllPending fails every pending call and retires the redialer.
func (l *lane) failAllPending(err error) {
	l.mu.Lock()
	for tag, cl := range l.pending {
		delete(l.pending, tag)
		l.c.Stats.Timeouts.Add(1)
		l.finish(cl, 0, err)
	}
	l.dialing = false
	l.mu.Unlock()
}

// wait blocks for a call's completion and resolves its outcome.
func (c *Client) wait(cl *call) (status byte, err error) {
	<-cl.done
	status, err = cl.status, cl.err
	if err == nil && status != StatusOK {
		c.Stats.StatusErrors.Add(1)
		if status == StatusDraining {
			c.Stats.DrainingSeen.Add(1)
		}
		err = statusErr(opName(cl.op), status)
	}
	// Transport-level failures feed the breaker; a status error means the
	// daemon answered, which is breaker-wise a success.
	c.breakerResult(cl.err != nil && !errors.Is(cl.err, ErrClosed))
	return status, err
}

// do runs one synchronous request end to end.
func (c *Client) do(cl *call) error {
	if err := c.submit(c.lane(), cl); err != nil {
		callPool.Put(cl)
		return err
	}
	_, err := c.wait(cl)
	callPool.Put(cl)
	return err
}

// Pending is an in-flight asynchronous request.
type Pending struct {
	c  *Client
	cl *call
}

// Wait blocks until the request completes and returns its outcome. It must
// be called exactly once; the destination buffers are not safe to touch
// until it returns.
func (p *Pending) Wait() error {
	_, err := p.c.wait(p.cl)
	callPool.Put(p.cl)
	p.cl = nil
	return err
}

// AsyncRead starts a pipelined READ into p.
func (c *Client) AsyncRead(off uint64, p []byte) (*Pending, error) {
	cl := getCall()
	cl.op = OpRead
	cl.seg1[0] = Seg{Off: off, Len: uint32(len(p))}
	cl.segs = cl.seg1[:1]
	cl.buf1[0] = p
	cl.bufs = cl.buf1[:1]
	if err := c.submit(c.lane(), cl); err != nil {
		callPool.Put(cl)
		return nil, err
	}
	return &Pending{c: c, cl: cl}, nil
}

// AsyncWrite starts a pipelined WRITE of p. The buffer must stay untouched
// until Wait returns (a reconnect may resend it).
func (c *Client) AsyncWrite(off uint64, p []byte) (*Pending, error) {
	cl := getCall()
	cl.op = OpWrite
	cl.seg1[0] = Seg{Off: off, Len: uint32(len(p))}
	cl.segs = cl.seg1[:1]
	cl.buf1[0] = p
	cl.payload = cl.buf1[:1]
	if err := c.submit(c.lane(), cl); err != nil {
		callPool.Put(cl)
		return nil, err
	}
	return &Pending{c: c, cl: cl}, nil
}

// Read performs a one-sided READ into p.
func (c *Client) Read(off uint64, p []byte) error {
	cl := getCall()
	cl.op = OpRead
	cl.seg1[0] = Seg{Off: off, Len: uint32(len(p))}
	cl.segs = cl.seg1[:1]
	cl.buf1[0] = p
	cl.bufs = cl.buf1[:1]
	return c.do(cl)
}

// Write performs a one-sided WRITE of p.
func (c *Client) Write(off uint64, p []byte) error {
	cl := getCall()
	cl.op = OpWrite
	cl.seg1[0] = Seg{Off: off, Len: uint32(len(p))}
	cl.segs = cl.seg1[:1]
	cl.buf1[0] = p
	cl.payload = cl.buf1[:1]
	return c.do(cl)
}

// ReadV performs a vectored READ; bufs[i] receives segs[i].
func (c *Client) ReadV(segs []Seg, bufs [][]byte) error {
	cl := getCall()
	cl.op = OpReadV
	cl.segs = append(cl.segs[:0], segs...)
	cl.bufs = bufs
	return c.do(cl)
}

// WriteV performs a vectored WRITE of bufs to segs. The buffers are
// streamed straight onto the wire — never assembled into one payload — and
// must stay untouched until the call returns.
func (c *Client) WriteV(segs []Seg, bufs [][]byte) error {
	cl := getCall()
	cl.op = OpWriteV
	cl.segs = append(cl.segs[:0], segs...)
	cl.payload = bufs
	return c.do(cl)
}

// Alloc reserves a contiguous range of pages, returning the base offset.
func (c *Client) Alloc(pages uint32) (uint64, error) {
	cl := getCall()
	cl.op = OpAlloc
	cl.seg1[0] = Seg{Off: 0, Len: pages}
	cl.segs = cl.seg1[:1]
	if err := c.submit(c.lane(), cl); err != nil {
		callPool.Put(cl)
		return 0, err
	}
	_, err := c.wait(cl)
	base := binary.LittleEndian.Uint64(cl.scratch[:8])
	callPool.Put(cl)
	if err != nil {
		return 0, err
	}
	return base, nil
}

// Info returns the region size and pages in use.
func (c *Client) Info() (size uint64, inUse uint64, err error) {
	cl := getCall()
	cl.op = OpInfo
	cl.segs = cl.segs[:0]
	if err := c.submit(c.lane(), cl); err != nil {
		callPool.Put(cl)
		return 0, 0, err
	}
	_, err = c.wait(cl)
	size = binary.LittleEndian.Uint64(cl.scratch[:8])
	inUse = binary.LittleEndian.Uint64(cl.scratch[8:16])
	callPool.Put(cl)
	if err != nil {
		return 0, 0, err
	}
	return size, inUse, nil
}

// Ping probes the daemon's health. nil means serving; ErrDraining (via
// errors.Is) means alive but shutting down; anything else means the
// request could not be answered inside its budget.
func (c *Client) Ping() error {
	cl := getCall()
	cl.op = OpPing
	cl.segs = cl.segs[:0]
	return c.do(cl)
}

// BatchOp is one sub-operation of a doorbell frame. Data holds the write
// payload sources or read destinations, one buffer per segment.
type BatchOp struct {
	Op   byte
	Segs []Seg
	Data [][]byte
	Err  error // per-op outcome, filled by Batch
}

// Batch issues the operations as one doorbell frame — a single header
// carrying every sub-op, written with one flush, the wire twin of
// fabric.QP.Submit — then waits for all of them. Each sub-op completes
// (possibly out of order) under its own tag; per-op outcomes land in
// ops[i].Err and the first failure is returned. On a reconnect, unfinished
// sub-ops are resent individually.
func (c *Client) Batch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	if len(ops) > MaxBatchOps {
		return fmt.Errorf("transport: batch of %d exceeds MaxBatchOps (%d)", len(ops), MaxBatchOps)
	}
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.breakerAllow(); err != nil {
		return err
	}
	l := c.lane()
	deadline := time.Now().Add(c.deadline)
	if err := l.acquire(len(ops), deadline); err != nil {
		c.breakerResult(true)
		return err
	}
	calls := make([]*call, len(ops))
	l.mu.Lock()
	tag0 := l.nextTag
	for i := range ops {
		cl := getCall()
		cl.op = ops[i].Op
		cl.segs = append(cl.segs[:0], ops[i].Segs...)
		switch ops[i].Op {
		case OpWrite, OpWriteV:
			cl.payload = ops[i].Data
		case OpRead, OpReadV:
			cl.bufs = ops[i].Data
		}
		cl.deadline = deadline
		cl.tag = l.nextTag
		l.nextTag++
		l.pending[cl.tag] = cl
		calls[i] = cl
	}
	c.Stats.Sent.Add(int64(len(ops)))
	c.Stats.track(int64(len(ops)))
	l.writeBatchLocked(tag0, calls)
	l.mu.Unlock()
	l.nudge()

	var first error
	for i, cl := range calls {
		_, err := c.wait(cl)
		ops[i].Err = err
		callPool.Put(cl)
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeBatchLocked frames the doorbell: one batch header, then every
// sub-op, then a single flush. On failure the connection is torn down and
// the redialer resends the registered calls as individual frames.
func (l *lane) writeBatchLocked(tag0 uint64, calls []*call) {
	if l.conn == nil {
		if !l.dialing {
			l.dialing = true
			go l.redial()
		}
		return
	}
	var hdr [reqHdrLen]byte
	hdr[0] = OpBatch
	binary.LittleEndian.PutUint32(hdr[1:5], l.c.pkey)
	binary.LittleEndian.PutUint64(hdr[5:13], tag0)
	binary.LittleEndian.PutUint16(hdr[13:15], uint16(len(calls)))
	err := error(nil)
	if _, err = l.w.Write(hdr[:]); err == nil {
		var sub [subHdrLen]byte
		for _, cl := range calls {
			sub[0] = cl.op
			binary.LittleEndian.PutUint16(sub[1:3], uint16(len(cl.segs)))
			if _, err = l.w.Write(sub[:]); err != nil {
				break
			}
			if err = l.writeBodyLocked(cl); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = l.w.Flush()
	}
	if err != nil {
		l.conn.Close()
		l.conn, l.w = nil, nil
		l.gen++
		if !l.dialing {
			l.dialing = true
			go l.redial()
		}
	}
}
