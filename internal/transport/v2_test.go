package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"dilos/internal/memnode"
)

// --- protocol v2 features -------------------------------------------------

func TestPingAndDrainStatus(t *testing.T) {
	srv, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping against a healthy server: %v", err)
	}
	// Enter the drain phase: new requests must come back StatusDraining,
	// surfaced as ErrDraining, on a connection that stays usable.
	done := make(chan struct{})
	go func() { srv.Drain(2 * time.Second); close(done) }()
	for srv.Draining() == false {
		time.Sleep(time.Millisecond)
	}
	err = c.Ping()
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("ping during drain = %v, want ErrDraining", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusDraining {
		t.Fatalf("drain error is not a StatusDraining StatusError: %v", err)
	}
	if err := c.Write(0, []byte{1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("write during drain = %v, want ErrDraining", err)
	}
	if got := srv.DrainedReqs.Load(); got < 2 {
		t.Fatalf("DrainedReqs = %d, want >= 2", got)
	}
	c.Close() // let Drain finish inside its grace window
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not finish after the last client hung up")
	}
}

func TestPipelinedOutOfOrderCompletions(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef, WithDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base, err := c.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Many in-flight tagged requests on one connection; each lands in its
	// own page so out-of-order execution cannot alias.
	const n = 48
	pend := make([]*Pending, n)
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 512)
		p, err := c.AsyncWrite(base+uint64(i)*memnode.PageSize, buf)
		if err != nil {
			t.Fatal(err)
		}
		pend[i], bufs[i] = p, buf
	}
	for i, p := range pend {
		if err := p.Wait(); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got := make([]byte, 512)
		p, err := c.AsyncRead(base+uint64(i)*memnode.PageSize, got)
		if err != nil {
			t.Fatal(err)
		}
		pend[i] = p
		bufs[i] = got
	}
	for i, p := range pend {
		if err := p.Wait(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		for _, b := range bufs[i] {
			if b != byte(i+1) {
				t.Fatalf("read %d returned another request's data", i)
			}
		}
	}
	if peak := c.Stats.InflightPeak.Load(); peak < 2 {
		t.Fatalf("inflight peak = %d; requests were not pipelined", peak)
	}
}

func TestBatchDoorbell(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base, err := c.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	w1 := bytes.Repeat([]byte{0xaa}, 256)
	w2 := bytes.Repeat([]byte{0xbb}, 256)
	ops := []BatchOp{
		{Op: OpWrite, Segs: []Seg{{base, 256}}, Data: [][]byte{w1}},
		{Op: OpWrite, Segs: []Seg{{base + 4096, 256}}, Data: [][]byte{w2}},
		{Op: OpPing},
	}
	if err := c.Batch(ops); err != nil {
		t.Fatalf("batch: %v", err)
	}
	r1, r2 := make([]byte, 256), make([]byte, 256)
	ops = []BatchOp{
		{Op: OpRead, Segs: []Seg{{base, 256}}, Data: [][]byte{r1}},
		{Op: OpRead, Segs: []Seg{{base + 4096, 256}}, Data: [][]byte{r2}},
	}
	if err := c.Batch(ops); err != nil {
		t.Fatalf("batch read: %v", err)
	}
	if !bytes.Equal(r1, w1) || !bytes.Equal(r2, w2) {
		t.Fatal("batch data mismatch")
	}
	// Per-op outcomes: one bad segment must not fail its neighbours.
	ops = []BatchOp{
		{Op: OpRead, Segs: []Seg{{^uint64(0) - 2, 8}}, Data: [][]byte{make([]byte, 8)}},
		{Op: OpRead, Segs: []Seg{{base, 256}}, Data: [][]byte{r1}},
	}
	err = c.Batch(ops)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusBounds {
		t.Fatalf("batch with bad op: err = %v, want StatusBounds", err)
	}
	if ops[0].Err == nil || ops[1].Err != nil {
		t.Fatalf("per-op outcomes wrong: %v / %v", ops[0].Err, ops[1].Err)
	}
}

func TestV1ClientAgainstV2Server(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := DialV1(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base, err := c.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x42}, 1024)
	if err := c.Write(base, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := c.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("v1 data mismatch against sniffing server")
	}
	segs := []Seg{{base, 64}, {base + 512, 64}}
	bufs := [][]byte{bytes.Repeat([]byte{7}, 64), bytes.Repeat([]byte{8}, 64)}
	if err := c.WriteV(segs, bufs); err != nil {
		t.Fatal(err)
	}
	rb := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := c.ReadV(segs, rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb[0], bufs[0]) || !bytes.Equal(rb[1], bufs[1]) {
		t.Fatal("v1 vectored mismatch")
	}
}

// --- failure matrix -------------------------------------------------------

// TestServerDiesMidExchange kills the connection after the request is on
// the wire but before the response: the client must redial and resend the
// request by tag, completing it on the fresh connection.
func TestServerDiesMidExchange(t *testing.T) {
	node := memnode.New(16<<20, 0xbeef)
	srv := NewServer(node)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if first {
				first = false
				// Read the hello and the first request frame, then die
				// mid-exchange without answering.
				go func() {
					var hello [4]byte
					io.ReadFull(conn, hello[:])
					var hdr [reqHdrLen]byte
					io.ReadFull(conn, hdr[:])
					conn.Close()
				}()
				continue
			}
			go srv.handle(conn)
		}
	}()
	c, err := Dial(ln.Addr().String(), 0xbeef,
		WithDeadline(2*time.Second), WithRedials(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("request killed mid-exchange did not recover: %v", err)
	}
	if c.Stats.Retries.Load() == 0 {
		t.Fatal("recovery happened without a resend?")
	}
}

func TestPkeyMismatchIsNotRetried(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xdead) // wrong key
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Write(0, []byte{1})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusBadKey {
		t.Fatalf("want StatusBadKey, got %v", err)
	}
	if c.Stats.Redials.Load() != 0 || c.Stats.Retries.Load() != 0 {
		t.Fatalf("status error triggered %d redials / %d resends; must be none",
			c.Stats.Redials.Load(), c.Stats.Retries.Load())
	}
}

// TestMalformedRequestsKeepStreamUsable sends oversized nsegs, an
// oversized segment, and out-of-bounds segments; each must come back as a
// status byte on a connection that then serves a normal request without
// redialing.
func TestMalformedRequestsKeepStreamUsable(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base, err := c.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}

	// Oversized nsegs (> MaxSegs).
	segs := make([]Seg, MaxSegs+1)
	bufs := make([][]byte, MaxSegs+1)
	for i := range segs {
		segs[i] = Seg{base, 1}
		bufs[i] = []byte{1}
	}
	err = c.WriteV(segs, bufs)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusBadOp {
		t.Fatalf("oversized nsegs: want StatusBadOp, got %v", err)
	}

	// Oversized single segment (> MaxSegLen): the server must discard the
	// payload, answer with a status, and keep the stream in sync.
	big := make([]byte, MaxSegLen+1)
	err = c.Write(base, big)
	if !errors.As(err, &se) || se.Status != StatusTooBig {
		t.Fatalf("oversized segment: want StatusTooBig, got %v", err)
	}

	// Out-of-bounds segment.
	err = c.Read(^uint64(0)-2, make([]byte, 8))
	if !errors.As(err, &se) || se.Status != StatusBounds {
		t.Fatalf("oob segment: want StatusBounds, got %v", err)
	}

	// The same connection still serves a valid request, with no redial.
	want := []byte{1, 2, 3}
	if err := c.Write(base, want); err != nil {
		t.Fatalf("stream unusable after malformed requests: %v", err)
	}
	got := make([]byte, 3)
	if err := c.Read(base, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read-back after malformed requests: %v", err)
	}
	if c.Stats.Redials.Load() != 0 {
		t.Fatal("malformed requests caused a redial; they must not")
	}
}

// TestDeadlineBoundsStall asserts the per-request budget is a real bound:
// a server that accepts and never answers fails the request within the
// budget plus scheduling slack, with ErrDeadline in the chain.
func TestDeadlineBoundsStall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never answer
		}
	}()
	const budget = 300 * time.Millisecond
	c, err := Dial(ln.Addr().String(), 0xbeef,
		WithDeadline(budget), WithRedials(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Read(0, make([]byte, 8))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read against a mute server succeeded")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error does not carry ErrDeadline: %v", err)
	}
	if elapsed > 4*budget {
		t.Fatalf("stall %v not bounded by the %v budget", elapsed, budget)
	}
	if c.Stats.Timeouts.Load() == 0 {
		t.Fatal("timeout not counted")
	}
}

func TestCircuitBreaker(t *testing.T) {
	node := memnode.New(16<<20, 0xbeef)
	srv := NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	const cooldown = 200 * time.Millisecond
	c, err := Dial(addr, 0xbeef,
		WithDeadline(150*time.Millisecond), WithRedials(0), WithBreaker(2, cooldown))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Two consecutive transport failures trip the breaker.
	for i := 0; i < 2; i++ {
		if err := c.Ping(); err == nil {
			t.Fatal("ping succeeded against a closed server")
		}
	}
	if c.Stats.BreakerTrips.Load() == 0 {
		t.Fatal("breaker did not trip")
	}
	// Open breaker fails fast — no dialing, no deadline wait.
	start := time.Now()
	err = c.Ping()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("open breaker did not fail fast")
	}
	// Restart the server on the same address; after the cooldown a probe
	// closes the breaker again.
	srv2 := NewServer(node)
	for i := 0; ; i++ {
		if _, err = srv2.Listen(addr); err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go srv2.Serve()
	defer srv2.Close()
	time.Sleep(cooldown)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = c.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %v", err)
		}
		time.Sleep(cooldown)
	}
	if c.Stats.Recoveries.Load() == 0 {
		t.Fatal("recovery not counted")
	}
}

// --- shutdown hygiene -----------------------------------------------------

// TestServerCloseReleasesConnections is the leak test for Server.Close
// orphaning live connections: handler goroutines must be gone after Close
// returns and clients must see their connections die.
func TestServerCloseReleasesConnections(t *testing.T) {
	node := memnode.New(16<<20, 0xbeef)
	srv := NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	before := runtime.NumGoroutine()
	clients := make([]*Client, 4)
	for i := range clients {
		c, err := Dial(addr, 0xbeef, WithRedials(0), WithDeadline(500*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	srv.Close() // must close live conns and join every handler
	for _, c := range clients {
		if err := c.Ping(); err == nil {
			t.Fatal("ping succeeded after server Close")
		}
		c.Close()
	}
	// Handler goroutines must drain back to (roughly) the pre-dial count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked past Close: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- hot-path allocations -------------------------------------------------

func TestSteadyStateAllocations(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base, err := c.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	// Warm the pools.
	for i := 0; i < 32; i++ {
		if err := c.Write(base, buf); err != nil {
			t.Fatal(err)
		}
		if err := c.Read(base, buf); err != nil {
			t.Fatal(err)
		}
	}
	reads := testing.AllocsPerRun(200, func() {
		if err := c.Read(base, buf); err != nil {
			t.Fatal(err)
		}
	})
	writes := testing.AllocsPerRun(200, func() {
		if err := c.Write(base, buf); err != nil {
			t.Fatal(err)
		}
	})
	// The budget covers the odd map-bucket or timer allocation; the old
	// code allocated segment slices and payload copies every call.
	if reads > 8 || writes > 8 {
		t.Fatalf("hot path allocates: %.1f allocs/read, %.1f allocs/write", reads, writes)
	}

	v1, err := DialV1(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	segs := []Seg{{base, 2048}, {base + 2048, 2048}}
	bufs := [][]byte{buf[:2048], buf[2048:]}
	for i := 0; i < 8; i++ {
		if err := v1.WriteV(segs, bufs); err != nil {
			t.Fatal(err)
		}
	}
	writev := testing.AllocsPerRun(200, func() {
		if err := v1.WriteV(segs, bufs); err != nil {
			t.Fatal(err)
		}
	})
	if writev > 8 {
		t.Fatalf("V1Client.WriteV allocates %.1f per call; scratch reuse broken", writev)
	}
}

// --- pipelining beats one-at-a-time ---------------------------------------

// TestPipelinedBeatsV1Throughput is the acceptance gate: the v2 pipelined
// client must out-read the v1 one-at-a-time client on loopback.
func TestPipelinedBeatsV1Throughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison")
	}
	if raceEnabled {
		// The race detector multiplies the cost of every sync op; v2 has an
		// order of magnitude more of them per request than v1, so the
		// comparison measures the instrumentation, not the transport. CI
		// runs this gate in the non-race job.
		t.Skip("timing gate is meaningless under the race detector")
	}
	_, addr, _ := startServer(t)
	v1, err := DialV1(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	base, err := v1.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 2000
	measureV1 := func() time.Duration {
		buf := make([]byte, 4096)
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := v1.Read(base+uint64(i%64)*4096, buf); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	measureV2 := func() time.Duration {
		c, err := Dial(addr, 0xbeef, WithDepth(64), WithDeadline(10*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		const window = 64
		bufs := make([][]byte, window)
		for i := range bufs {
			bufs[i] = make([]byte, 4096)
		}
		pend := make([]*Pending, 0, window)
		start := time.Now()
		for i := 0; i < ops; i++ {
			if len(pend) == window {
				if err := pend[0].Wait(); err != nil {
					t.Fatal(err)
				}
				pend = pend[1:]
			}
			p, err := c.AsyncRead(base+uint64(i%64)*4096, bufs[i%window])
			if err != nil {
				t.Fatal(err)
			}
			pend = append(pend, p)
		}
		for _, p := range pend {
			if err := p.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// One retry to absorb scheduler noise on loaded CI machines.
	for attempt := 0; ; attempt++ {
		d1, d2 := measureV1(), measureV2()
		t.Logf("v1 %v, v2 pipelined %v (%.2fx)", d1, d2, float64(d1)/float64(d2))
		if d2 < d1 {
			return
		}
		if attempt == 2 {
			t.Fatalf("pipelined v2 (%v) not faster than v1 (%v)", d2, d1)
		}
	}
}

// --- stats plumbing -------------------------------------------------------

func TestClientStatsSnapshot(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	snap := c.Stats.Snapshot()
	for _, key := range []string{
		"transport.sent", "transport.completed", "transport.retries",
		"transport.redials", "transport.inflight", "transport.draining",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("snapshot missing %q", key)
		}
	}
	if snap["transport.sent"] < 1 || snap["transport.completed"] < 1 {
		t.Fatalf("counters dead: %v", snap)
	}
}

// TestWireCompat pins the v2 frame layout: a byte-level handcrafted PING
// must round-trip against the server, so client and server cannot drift
// in lockstep.
func TestWireCompat(t *testing.T) {
	_, addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(helloMagic[:]); err != nil {
		t.Fatal(err)
	}
	req := make([]byte, reqHdrLen)
	req[0] = OpPing
	binary.LittleEndian.PutUint32(req[1:5], 0xbeef)
	binary.LittleEndian.PutUint64(req[5:13], 0x1122334455667788)
	binary.LittleEndian.PutUint16(req[13:15], 0)
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, respHdrLen)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	if tag := binary.LittleEndian.Uint64(resp[:8]); tag != 0x1122334455667788 {
		t.Fatalf("echoed tag %#x", tag)
	}
	if resp[8] != StatusOK {
		t.Fatalf("status %d", resp[8])
	}
}

// --- review regressions ---------------------------------------------------

// TestZeroSegRequestsAnswerOK: a vectored op with zero segments is a
// no-op, not a panic — the seed server answered these StatusOK and a
// client must not be able to crash the daemon with an empty READV.
func TestZeroSegRequestsAnswerOK(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ReadV(nil, nil); err != nil {
		t.Fatalf("zero-seg READV: %v", err)
	}
	if err := c.WriteV(nil, nil); err != nil {
		t.Fatalf("zero-seg WRITEV: %v", err)
	}
	// The daemon must still be alive with the stream usable.
	if err := c.Ping(); err != nil {
		t.Fatalf("server unusable after zero-seg requests: %v", err)
	}
	if c.Stats.Redials.Load() != 0 {
		t.Fatal("zero-seg requests caused a redial")
	}
}

// readV2Req consumes one v2 request frame (header + segment headers) and
// returns its tag and total declared payload/response length.
func readV2Req(br *bufio.Reader) (tag uint64, n int, ok bool) {
	var hdr [reqHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, false
	}
	tag = binary.LittleEndian.Uint64(hdr[5:13])
	nsegs := int(binary.LittleEndian.Uint16(hdr[13:15]))
	for i := 0; i < nsegs; i++ {
		var sh [segHdrLen]byte
		if _, err := io.ReadFull(br, sh[:]); err != nil {
			return 0, 0, false
		}
		n += int(binary.LittleEndian.Uint32(sh[8:12]))
	}
	return tag, n, true
}

// TestLateResponseKeepsConnection: a response arriving after its
// request's budget expired must be drained by tag, not treated as an
// unknown-tag protocol error that tears the connection down and resends
// every other in-flight request.
func TestLateResponseKeepsConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var hello [4]byte
		if _, err := io.ReadFull(br, hello[:]); err != nil {
			return
		}
		reply := func(tag uint64, n int) {
			resp := make([]byte, respHdrLen+n)
			binary.LittleEndian.PutUint64(resp[:8], tag)
			resp[8] = StatusOK
			conn.Write(resp)
		}
		// Withhold the first answer until the second request arrives — by
		// then the first call's budget has expired client-side — then
		// answer both, late one first, and keep serving promptly.
		tag0, n0, ok := readV2Req(br)
		if !ok {
			return
		}
		tag1, n1, ok := readV2Req(br)
		if !ok {
			return
		}
		reply(tag0, n0)
		reply(tag1, n1)
		for {
			tag, n, ok := readV2Req(br)
			if !ok {
				return
			}
			reply(tag, n)
		}
	}()
	c, err := Dial(ln.Addr().String(), 0xbeef,
		WithDeadline(200*time.Millisecond), WithRedials(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.AsyncRead(0, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("withheld response: want ErrDeadline, got %v", err)
	}
	// The second request flushes both answers; the late one carries an
	// expired tag plus 64 payload bytes the reader must drain for this
	// one to complete on the same connection.
	if err := c.Read(0, make([]byte, 64)); err != nil {
		t.Fatalf("request after a late response: %v", err)
	}
	if got := c.Stats.Redials.Load(); got != 0 {
		t.Fatalf("late response caused %d redials; the connection must survive", got)
	}
	if got := c.Stats.LateDrained.Load(); got != 1 {
		t.Fatalf("LateDrained = %d, want 1", got)
	}
}

// TestCloseWaitsForReader: Close must not complete a pending call while
// the lane reader may still be copying a payload into the caller's
// buffer — once Wait returns, the buffer belongs to the caller again.
// Under -race this pins the Close/readPayload window.
func TestCloseWaitsForReader(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	partialSent := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var hello [4]byte
		if _, err := io.ReadFull(br, hello[:]); err != nil {
			return
		}
		tag, n, ok := readV2Req(br)
		if !ok {
			return
		}
		// Answer with the header and half the payload, then stall with
		// the connection held open: the client reader is left blocked
		// mid-readPayload, the exact window the old Close raced.
		resp := make([]byte, respHdrLen+n/2)
		binary.LittleEndian.PutUint64(resp[:8], tag)
		resp[8] = StatusOK
		conn.Write(resp)
		close(partialSent)
		<-release
	}()
	c, err := Dial(ln.Addr().String(), 0xbeef,
		WithDeadline(5*time.Second), WithRedials(0))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Read(0, buf) }()
	<-partialSent
	time.Sleep(20 * time.Millisecond) // let the reader enter readPayload
	c.Close()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("read interrupted by Close = %v, want ErrClosed", err)
	}
	// Wait returned, so the buffer is the caller's again; writing it must
	// not race a reader goroutine.
	for i := range buf {
		buf[i] = 0xEE
	}
}

// TestBatchRejectsRestrictedSubOps: wire.go restricts doorbell sub-ops
// to READ/WRITE/READV/WRITEV/PING. A smuggled ALLOC must come back
// StatusBadOp — without allocating anything a resend could leak — on a
// stream that stays usable for its batch neighbours.
func TestBatchRejectsRestrictedSubOps(t *testing.T) {
	_, addr, node := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(helloMagic[:]); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, reqHdrLen)
	frame[0] = OpBatch
	binary.LittleEndian.PutUint32(frame[1:5], 0xbeef)
	binary.LittleEndian.PutUint64(frame[5:13], 100) // tag0
	binary.LittleEndian.PutUint16(frame[13:15], 2)  // two sub-ops
	// Sub-op 0: ALLOC of 4 pages (1 seg whose Len carries the count).
	frame = append(frame, OpAlloc, 1, 0)
	seg := make([]byte, segHdrLen)
	binary.LittleEndian.PutUint32(seg[8:12], 4)
	frame = append(frame, seg...)
	// Sub-op 1: PING.
	frame = append(frame, OpPing, 0, 0)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	statuses := map[uint64]byte{} // completions may arrive out of order
	var resp [respHdrLen]byte
	for i := 0; i < 2; i++ {
		if _, err := io.ReadFull(conn, resp[:]); err != nil {
			t.Fatal(err)
		}
		statuses[binary.LittleEndian.Uint64(resp[:8])] = resp[8]
	}
	if statuses[100] != StatusBadOp {
		t.Fatalf("smuggled ALLOC sub-op: status %d, want StatusBadOp", statuses[100])
	}
	if statuses[101] != StatusOK {
		t.Fatalf("PING sub-op beside rejected ALLOC: status %d, want StatusOK", statuses[101])
	}
	if got := node.PagesInUse(); got != 0 {
		t.Fatalf("rejected ALLOC still allocated %d pages", got)
	}
}

// TestDrainSnapshotAtParseTime: the drain decision is taken when a
// request is parsed off the stream, not when it executes, so a request
// already queued when Drain flips the flag completes normally — exactly
// what the Drain contract promises.
func TestDrainSnapshotAtParseTime(t *testing.T) {
	node := memnode.New(16<<20, 0xbeef)
	srv := NewServer(node)
	srv.draining.Store(true)
	// Parsed before the flip: executes despite the live drain flag.
	rq := &request{op: OpPing, pkey: 0xbeef, status: statusExec}
	if got := srv.run(rq); got != StatusOK {
		t.Fatalf("request parsed before drain = status %d, want StatusOK", got)
	}
	// Parsed after the flip: refused.
	rq = &request{op: OpPing, pkey: 0xbeef, status: statusExec, draining: true}
	if got := srv.run(rq); got != StatusDraining {
		t.Fatalf("request parsed during drain = status %d, want StatusDraining", got)
	}
	if got := srv.DrainedReqs.Load(); got != 1 {
		t.Fatalf("DrainedReqs = %d, want 1", got)
	}
}

// TestConcurrentLanes drives several lanes and clients at once under the
// race detector: the sharded server must keep page-disjoint writes intact.
func TestConcurrentLanes(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, 0xbeef, WithLanes(4), WithDepth(16))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base, err := c.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			got := make([]byte, 4096)
			for i := 0; i < 50; i++ {
				off := base + uint64(w*16+i%16)*4096
				for j := range buf {
					buf[j] = byte(w*31 + i)
				}
				if err := c.Write(off, buf); err != nil {
					errCh <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				if err := c.Read(off, got); err != nil {
					errCh <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(buf, got) {
					errCh <- fmt.Errorf("worker %d: data corrupted", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
