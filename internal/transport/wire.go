// Wire protocol v2: the framing shared by Client and Server.
//
// A v2 connection opens with a 4-byte hello (helloMagic) so the server can
// tell v2 clients from legacy v1 ones — a v1 stream starts with an op byte
// (1..8), which can never collide with the magic's first byte (0xD2).
//
// v2 request frame (little-endian):
//
//	[op u8][pkey u32][tag u64][nsegs u16]
//	then nsegs × [off u64][len u32]
//	then, for WRITE/WRITEV, the payloads in segment order.
//
// v2 batch frame — a doorbell: one header, many sub-operations, one flush
// (the wire twin of fabric.QP.Submit):
//
//	[OpBatch u8][pkey u32][tag0 u64][nsub u16]
//	then nsub × { [op u8][nsegs u16][segs...][write payloads...] }
//
// sub-op k answers under tag0+k. Sub-ops are restricted to
// READ/WRITE/READV/WRITEV/PING.
//
// v2 response frame:
//
//	[tag u64][status u8]
//	then, only when status is OK: READ/READV payloads in segment order,
//	[off u64] for ALLOC, [size u64][inUse u64] for INFO.
//
// Responses carry the request's tag and may complete OUT OF ORDER: the
// server executes a connection's requests on a small worker pool, so two
// in-flight operations touching the same bytes have no ordering guarantee
// (exactly like one-sided RDMA). Callers must not overlap conflicting
// operations; the paging stack and the ext9 driver never do.

package transport

import "time"

// helloMagic opens every v2 connection. The first byte is outside the v1
// op range so the server can sniff the protocol version per connection.
var helloMagic = [4]byte{0xD2, 'M', 'N', '2'}

// Op codes. 1-6 are wire-compatible with protocol v1.
const (
	OpRead   = 1
	OpWrite  = 2
	OpReadV  = 3
	OpWriteV = 4
	OpAlloc  = 5
	OpInfo   = 6
	OpPing   = 7 // health probe: returns the server's serving/draining state
	OpBatch  = 8 // doorbell frame carrying sub-operations (v2 only)
)

// Status codes.
const (
	StatusOK       = 0
	StatusBadKey   = 1
	StatusBadOp    = 2
	StatusBounds   = 3
	StatusNoSpace  = 4
	StatusDraining = 5 // server is shutting down gracefully; go elsewhere
	StatusTooBig   = 6 // segment or payload exceeds the per-request caps
)

// Protocol limits. They bound per-connection server memory: a connection
// can hold at most serverInflight parsed requests of at most MaxReqBytes
// each; anything larger is drained off the stream and answered with a
// status byte, never buffered.
const (
	// MaxSegs bounds vectored requests (mirrors the fabric's practical cap).
	MaxSegs = 64
	// MaxSegLen bounds one segment's length.
	MaxSegLen = 1 << 20
	// MaxReqBytes bounds one request's total payload.
	MaxReqBytes = 8 << 20
	// MaxBatchOps bounds the sub-operations of one doorbell frame.
	MaxBatchOps = 64
)

// v2 fixed header sizes.
const (
	reqHdrLen  = 1 + 4 + 8 + 2 // op, pkey, tag, nsegs
	respHdrLen = 8 + 1         // tag, status
	segHdrLen  = 8 + 4         // off, len
	subHdrLen  = 1 + 2         // op, nsegs
)

// Seg is one segment of a vectored request.
type Seg struct {
	Off uint64
	Len uint32
}

// segsBytes sums the segment lengths.
func segsBytes(segs []Seg) int {
	n := 0
	for _, sg := range segs {
		n += int(sg.Len)
	}
	return n
}

// respPayloadLen gives the response payload size for an OK status.
func respPayloadLen(op byte, segs []Seg) int {
	switch op {
	case OpRead, OpReadV:
		return segsBytes(segs)
	case OpAlloc:
		return 8
	case OpInfo:
		return 16
	}
	return 0
}

// Client dial/IO defaults. They are generous for a LAN; tests and
// latency-sensitive callers tighten them with options.
const (
	DefaultDialTimeout = 2 * time.Second
	DefaultIOTimeout   = 2 * time.Second
	// DefaultDeadline is the per-request budget: dialing, retries and
	// resends all happen inside it, and when it expires the request fails
	// with a bounded error instead of blocking.
	DefaultDeadline   = 2 * time.Second
	DefaultRedials    = 3
	redialBackoffBase = 25 * time.Millisecond
	redialBackoffCap  = 500 * time.Millisecond
)
