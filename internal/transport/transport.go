// Package transport implements a real (non-simulated) wire protocol for a
// remote memory node over TCP: the one-sided READ/WRITE/vectored-op
// service a DiLOS computing node needs, runnable today on any pair of
// hosts (cmd/memnoded serves it; Client speaks it). The simulator's fabric
// models RDMA timing; this package demonstrates the same protocol working
// end-to-end outside the simulator — including the protection-key check
// the paper's driver enforces in the RNIC.
//
// Wire format (little-endian), one request/response pair per message:
//
//	request:  [op u8][pkey u32][nsegs u16] then per segment
//	          [off u64][len u32]; for WRITE/WRITEV the payloads follow
//	          in segment order.
//	response: [status u8] then for READ/READV the payloads in segment
//	          order; for ALLOC a [off u64].
//
// Ops: 1 READ, 2 WRITE, 3 READV, 4 WRITEV, 5 ALLOC (pages), 6 INFO.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"dilos/internal/memnode"
)

// Op codes.
const (
	OpRead   = 1
	OpWrite  = 2
	OpReadV  = 3
	OpWriteV = 4
	OpAlloc  = 5
	OpInfo   = 6
)

// Status codes.
const (
	StatusOK      = 0
	StatusBadKey  = 1
	StatusBadOp   = 2
	StatusBounds  = 3
	StatusNoSpace = 4
)

// MaxSegs bounds vectored requests (mirrors the fabric's practical cap).
const MaxSegs = 64

// Seg is one segment of a vectored request.
type Seg struct {
	Off uint64
	Len uint32
}

// Server serves a memory node over TCP.
type Server struct {
	node *memnode.Node
	mu   sync.Mutex // the node structure is not concurrent-safe
	ln   net.Listener
}

// NewServer wraps a memory node.
func NewServer(node *memnode.Node) *Server { return &Server{node: node} }

// Listen binds the server; addr like ":7479". Returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	var hdr [7]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		pkey := binary.LittleEndian.Uint32(hdr[1:5])
		nsegs := binary.LittleEndian.Uint16(hdr[5:7])
		if err := s.serveOne(r, w, op, pkey, int(nsegs)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) serveOne(r *bufio.Reader, w *bufio.Writer, op byte, pkey uint32, nsegs int) error {
	if nsegs > MaxSegs {
		w.WriteByte(StatusBadOp)
		return fmt.Errorf("too many segments")
	}
	segs := make([]Seg, nsegs)
	var segHdr [12]byte
	for i := range segs {
		if _, err := io.ReadFull(r, segHdr[:]); err != nil {
			return err
		}
		segs[i].Off = binary.LittleEndian.Uint64(segHdr[:8])
		segs[i].Len = binary.LittleEndian.Uint32(segHdr[8:12])
	}
	// Drain write payloads before any early status return, to keep the
	// stream in sync.
	var payload []byte
	if op == OpWrite || op == OpWriteV {
		total := 0
		for _, sg := range segs {
			total += int(sg.Len)
		}
		payload = make([]byte, total)
		if _, err := io.ReadFull(r, payload); err != nil {
			return err
		}
	}
	if pkey != s.node.ProtKey {
		w.WriteByte(StatusBadKey)
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case OpRead, OpReadV:
		for _, sg := range segs {
			if sg.Off+uint64(sg.Len) > s.node.Size() {
				w.WriteByte(StatusBounds)
				return nil
			}
		}
		w.WriteByte(StatusOK)
		buf := make([]byte, 0, 4096)
		for _, sg := range segs {
			if cap(buf) < int(sg.Len) {
				buf = make([]byte, sg.Len)
			}
			b := buf[:sg.Len]
			s.node.ReadAt(sg.Off, b)
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	case OpWrite, OpWriteV:
		off := 0
		for _, sg := range segs {
			if sg.Off+uint64(sg.Len) > s.node.Size() {
				w.WriteByte(StatusBounds)
				return nil
			}
			off += int(sg.Len)
		}
		off = 0
		for _, sg := range segs {
			s.node.WriteAt(sg.Off, payload[off:off+int(sg.Len)])
			off += int(sg.Len)
		}
		w.WriteByte(StatusOK)
	case OpAlloc:
		// segs[0].Len carries the page count.
		if nsegs != 1 {
			w.WriteByte(StatusBadOp)
			return nil
		}
		base, err := s.node.AllocRange(uint64(segs[0].Len))
		if err != nil {
			w.WriteByte(StatusNoSpace)
			return nil
		}
		w.WriteByte(StatusOK)
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], base)
		w.Write(out[:])
	case OpInfo:
		w.WriteByte(StatusOK)
		var out [16]byte
		binary.LittleEndian.PutUint64(out[:8], s.node.Size())
		binary.LittleEndian.PutUint64(out[8:], uint64(s.node.PagesInUse()))
		w.Write(out[:])
	default:
		w.WriteByte(StatusBadOp)
	}
	return nil
}

// Client is a computing-node-side connection to a memory node daemon.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	pkey uint32
	mu   sync.Mutex
}

// Dial connects to a memory node daemon.
func Dial(addr string, pkey uint32) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
		pkey: pkey,
	}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) request(op byte, segs []Seg, payload []byte) (byte, error) {
	var hdr [7]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], c.pkey)
	binary.LittleEndian.PutUint16(hdr[5:7], uint16(len(segs)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	var segHdr [12]byte
	for _, sg := range segs {
		binary.LittleEndian.PutUint64(segHdr[:8], sg.Off)
		binary.LittleEndian.PutUint32(segHdr[8:12], sg.Len)
		if _, err := c.w.Write(segHdr[:]); err != nil {
			return 0, err
		}
	}
	if payload != nil {
		if _, err := c.w.Write(payload); err != nil {
			return 0, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	return status, nil
}

func statusErr(op string, status byte) error {
	if status == StatusOK {
		return nil
	}
	return fmt.Errorf("transport: %s failed with status %d", op, status)
}

// Read performs a one-sided READ into p.
func (c *Client) Read(off uint64, p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, err := c.request(OpRead, []Seg{{off, uint32(len(p))}}, nil)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return statusErr("read", status)
	}
	_, err = io.ReadFull(c.r, p)
	return err
}

// Write performs a one-sided WRITE of p.
func (c *Client) Write(off uint64, p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, err := c.request(OpWrite, []Seg{{off, uint32(len(p))}}, p)
	if err != nil {
		return err
	}
	return statusErr("write", status)
}

// ReadV performs a vectored READ; bufs[i] receives segs[i].
func (c *Client) ReadV(segs []Seg, bufs [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, err := c.request(OpReadV, segs, nil)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return statusErr("readv", status)
	}
	for _, b := range bufs {
		if _, err := io.ReadFull(c.r, b); err != nil {
			return err
		}
	}
	return nil
}

// WriteV performs a vectored WRITE of bufs to segs.
func (c *Client) WriteV(segs []Seg, bufs [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var payload []byte
	for _, b := range bufs {
		payload = append(payload, b...)
	}
	status, err := c.request(OpWriteV, segs, payload)
	if err != nil {
		return err
	}
	return statusErr("writev", status)
}

// Alloc reserves a contiguous range of pages, returning the base offset.
func (c *Client) Alloc(pages uint32) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, err := c.request(OpAlloc, []Seg{{0, pages}}, nil)
	if err != nil {
		return 0, err
	}
	if status != StatusOK {
		return 0, statusErr("alloc", status)
	}
	var out [8]byte
	if _, err := io.ReadFull(c.r, out[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(out[:]), nil
}

// Info returns the region size and pages in use.
func (c *Client) Info() (size uint64, inUse uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, err := c.request(OpInfo, nil, nil)
	if err != nil {
		return 0, 0, err
	}
	if status != StatusOK {
		return 0, 0, statusErr("info", status)
	}
	var out [16]byte
	if _, err := io.ReadFull(c.r, out[:]); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(out[:8]), binary.LittleEndian.Uint64(out[8:]), nil
}

// Backing adapts a Client into the backing interface a DiLOS computing
// node expects (fabric.Store + page-range allocation): with it, a
// simulated LibOS keeps every one of its pages on a real memnoded daemon —
// the data path crosses the network, the timing stays modelled. IO errors
// are fatal (a paging system cannot continue without its backing store).
type Backing struct {
	C    *Client
	PKey uint32
}

// NewBacking dials a memnoded daemon and wraps it as a Backing.
func NewBacking(addr string, pkey uint32) (*Backing, error) {
	c, err := Dial(addr, pkey)
	if err != nil {
		return nil, err
	}
	return &Backing{C: c, PKey: pkey}, nil
}

// ReadAt implements fabric.Store.
func (b *Backing) ReadAt(off uint64, p []byte) {
	if err := b.C.Read(off, p); err != nil {
		panic(fmt.Sprintf("transport: backing read failed: %v", err))
	}
}

// WriteAt implements fabric.Store.
func (b *Backing) WriteAt(off uint64, p []byte) {
	if err := b.C.Write(off, p); err != nil {
		panic(fmt.Sprintf("transport: backing write failed: %v", err))
	}
}

// AllocRange reserves contiguous pages on the daemon.
func (b *Backing) AllocRange(pages uint64) (uint64, error) {
	return b.C.Alloc(uint32(pages))
}

// Key returns the protection key presented on every request.
func (b *Backing) Key() uint32 { return b.PKey }
