// Package transport implements a real (non-simulated) wire protocol for a
// remote memory node over TCP: the one-sided READ/WRITE/vectored-op
// service a DiLOS computing node needs, runnable today on any pair of
// hosts (cmd/memnoded serves it; Client speaks it). The simulator's fabric
// models RDMA timing; this package demonstrates the same protocol working
// end-to-end outside the simulator — including the protection-key check
// the paper's driver enforces in the RNIC.
//
// Wire format (little-endian), one request/response pair per message:
//
//	request:  [op u8][pkey u32][nsegs u16] then per segment
//	          [off u64][len u32]; for WRITE/WRITEV the payloads follow
//	          in segment order.
//	response: [status u8] then for READ/READV the payloads in segment
//	          order; for ALLOC a [off u64].
//
// Ops: 1 READ, 2 WRITE, 3 READV, 4 WRITEV, 5 ALLOC (pages), 6 INFO.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dilos/internal/memnode"
)

// Op codes.
const (
	OpRead   = 1
	OpWrite  = 2
	OpReadV  = 3
	OpWriteV = 4
	OpAlloc  = 5
	OpInfo   = 6
)

// Status codes.
const (
	StatusOK      = 0
	StatusBadKey  = 1
	StatusBadOp   = 2
	StatusBounds  = 3
	StatusNoSpace = 4
)

// MaxSegs bounds vectored requests (mirrors the fabric's practical cap).
const MaxSegs = 64

// Seg is one segment of a vectored request.
type Seg struct {
	Off uint64
	Len uint32
}

// Server serves a memory node over TCP.
type Server struct {
	node *memnode.Node
	mu   sync.Mutex // the node structure is not concurrent-safe
	ln   net.Listener
}

// NewServer wraps a memory node.
func NewServer(node *memnode.Node) *Server { return &Server{node: node} }

// Listen binds the server; addr like ":7479". Returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	var hdr [7]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		pkey := binary.LittleEndian.Uint32(hdr[1:5])
		nsegs := binary.LittleEndian.Uint16(hdr[5:7])
		if err := s.serveOne(r, w, op, pkey, int(nsegs)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) serveOne(r *bufio.Reader, w *bufio.Writer, op byte, pkey uint32, nsegs int) error {
	if nsegs > MaxSegs {
		w.WriteByte(StatusBadOp)
		return fmt.Errorf("too many segments")
	}
	segs := make([]Seg, nsegs)
	var segHdr [12]byte
	for i := range segs {
		if _, err := io.ReadFull(r, segHdr[:]); err != nil {
			return err
		}
		segs[i].Off = binary.LittleEndian.Uint64(segHdr[:8])
		segs[i].Len = binary.LittleEndian.Uint32(segHdr[8:12])
	}
	// Drain write payloads before any early status return, to keep the
	// stream in sync.
	var payload []byte
	if op == OpWrite || op == OpWriteV {
		total := 0
		for _, sg := range segs {
			total += int(sg.Len)
		}
		payload = make([]byte, total)
		if _, err := io.ReadFull(r, payload); err != nil {
			return err
		}
	}
	if pkey != s.node.ProtKey {
		w.WriteByte(StatusBadKey)
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case OpRead, OpReadV:
		// Overflow-safe bounds check up front: a malformed request gets a
		// status byte back, never a daemon crash.
		for _, sg := range segs {
			if s.node.CheckRange(sg.Off, uint64(sg.Len)) != nil {
				w.WriteByte(StatusBounds)
				return nil
			}
		}
		w.WriteByte(StatusOK)
		buf := make([]byte, 0, 4096)
		for _, sg := range segs {
			if cap(buf) < int(sg.Len) {
				buf = make([]byte, sg.Len)
			}
			b := buf[:sg.Len]
			if err := s.node.ReadAt(sg.Off, b); err != nil {
				return err // unreachable after the pre-check
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	case OpWrite, OpWriteV:
		off := 0
		for _, sg := range segs {
			if s.node.CheckRange(sg.Off, uint64(sg.Len)) != nil {
				w.WriteByte(StatusBounds)
				return nil
			}
			off += int(sg.Len)
		}
		off = 0
		for _, sg := range segs {
			if err := s.node.WriteAt(sg.Off, payload[off:off+int(sg.Len)]); err != nil {
				return err // unreachable after the pre-check
			}
			off += int(sg.Len)
		}
		w.WriteByte(StatusOK)
	case OpAlloc:
		// segs[0].Len carries the page count.
		if nsegs != 1 {
			w.WriteByte(StatusBadOp)
			return nil
		}
		base, err := s.node.AllocRange(uint64(segs[0].Len))
		if err != nil {
			w.WriteByte(StatusNoSpace)
			return nil
		}
		w.WriteByte(StatusOK)
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], base)
		w.Write(out[:])
	case OpInfo:
		w.WriteByte(StatusOK)
		var out [16]byte
		binary.LittleEndian.PutUint64(out[:8], s.node.Size())
		binary.LittleEndian.PutUint64(out[8:], uint64(s.node.PagesInUse()))
		w.Write(out[:])
	default:
		w.WriteByte(StatusBadOp)
	}
	return nil
}

// Client dial/IO defaults. They are generous for a LAN; tests and
// latency-sensitive callers tighten them with SetTimeouts.
const (
	DefaultDialTimeout = 2 * time.Second
	DefaultIOTimeout   = 2 * time.Second
	DefaultRedials     = 3
	redialBackoffBase  = 25 * time.Millisecond
	redialBackoffCap   = 500 * time.Millisecond
)

// StatusError is a non-OK response from the daemon: the request was
// received, parsed, and rejected. The connection stays usable, so the
// client does not retry these.
type StatusError struct {
	Op     string
	Status byte
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("transport: %s failed with status %d", e.Op, e.Status)
}

func statusErr(op string, status byte) error {
	if status == StatusOK {
		return nil
	}
	return &StatusError{Op: op, Status: status}
}

// Client is a computing-node-side connection to a memory node daemon.
// Every request runs under an I/O deadline; a timed-out or broken
// connection is torn down and redialed with exponential backoff, and the
// whole request is resent on the fresh connection (safe because the
// protocol is stateless per message). A dead server therefore surfaces as
// an error after a bounded delay instead of blocking forever.
type Client struct {
	addr        string
	pkey        uint32
	dialTimeout time.Duration
	ioTimeout   time.Duration
	redials     int

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a memory node daemon with the default timeouts.
func Dial(addr string, pkey uint32) (*Client, error) {
	c := &Client{
		addr:        addr,
		pkey:        pkey,
		dialTimeout: DefaultDialTimeout,
		ioTimeout:   DefaultIOTimeout,
		redials:     DefaultRedials,
	}
	c.mu.Lock()
	err := c.ensure()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// SetTimeouts adjusts the deadline and reconnection policy: zero durations
// keep the current values, a negative redials disables reconnection
// entirely, redials >= 0 sets the redial attempt count.
func (c *Client) SetTimeouts(dial, io time.Duration, redials int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dial > 0 {
		c.dialTimeout = dial
	}
	if io > 0 {
		c.ioTimeout = io
	}
	if redials < 0 {
		c.redials = 0
	} else {
		c.redials = redials
	}
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.r, c.w = nil, nil, nil
	return err
}

// ensure dials if the client has no live connection. Caller holds c.mu.
func (c *Client) ensure() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 64<<10)
	c.w = bufio.NewWriterSize(conn, 64<<10)
	return nil
}

// teardown drops a connection in an unknown state. Caller holds c.mu.
func (c *Client) teardown() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.r, c.w = nil, nil, nil
	}
}

// transact runs one request/response exchange under the deadline and
// reconnection policy. recv consumes the response (status byte already
// read) through c.r.
func (c *Client) transact(opName string, op byte, segs []Seg, payload []byte, recv func(status byte) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	backoff := redialBackoffBase
	var lastErr error
	for attempt := 0; attempt <= c.redials; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > redialBackoffCap {
				backoff = redialBackoffCap
			}
		}
		if err := c.ensure(); err != nil {
			lastErr = err
			continue
		}
		if c.ioTimeout > 0 {
			c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
		}
		status, err := c.request(op, segs, payload)
		if err == nil {
			if err = recv(status); err == nil {
				return nil
			}
			var se *StatusError
			if errors.As(err, &se) {
				return err // daemon answered; the stream is in sync
			}
		}
		// Timeout or broken pipe mid-exchange: the stream position is
		// unknown, so drop the connection and resend the whole request on
		// a fresh one.
		lastErr = err
		c.teardown()
	}
	return fmt.Errorf("transport: %s %s: %w", opName, c.addr, lastErr)
}

func (c *Client) request(op byte, segs []Seg, payload []byte) (byte, error) {
	var hdr [7]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], c.pkey)
	binary.LittleEndian.PutUint16(hdr[5:7], uint16(len(segs)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	var segHdr [12]byte
	for _, sg := range segs {
		binary.LittleEndian.PutUint64(segHdr[:8], sg.Off)
		binary.LittleEndian.PutUint32(segHdr[8:12], sg.Len)
		if _, err := c.w.Write(segHdr[:]); err != nil {
			return 0, err
		}
	}
	if payload != nil {
		if _, err := c.w.Write(payload); err != nil {
			return 0, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	return status, nil
}

// Read performs a one-sided READ into p.
func (c *Client) Read(off uint64, p []byte) error {
	return c.transact("read", OpRead, []Seg{{off, uint32(len(p))}}, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("read", status)
		}
		_, err := io.ReadFull(c.r, p)
		return err
	})
}

// Write performs a one-sided WRITE of p.
func (c *Client) Write(off uint64, p []byte) error {
	return c.transact("write", OpWrite, []Seg{{off, uint32(len(p))}}, p, func(status byte) error {
		return statusErr("write", status)
	})
}

// ReadV performs a vectored READ; bufs[i] receives segs[i].
func (c *Client) ReadV(segs []Seg, bufs [][]byte) error {
	return c.transact("readv", OpReadV, segs, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("readv", status)
		}
		for _, b := range bufs {
			if _, err := io.ReadFull(c.r, b); err != nil {
				return err
			}
		}
		return nil
	})
}

// WriteV performs a vectored WRITE of bufs to segs.
func (c *Client) WriteV(segs []Seg, bufs [][]byte) error {
	var payload []byte
	for _, b := range bufs {
		payload = append(payload, b...)
	}
	return c.transact("writev", OpWriteV, segs, payload, func(status byte) error {
		return statusErr("writev", status)
	})
}

// Alloc reserves a contiguous range of pages, returning the base offset.
func (c *Client) Alloc(pages uint32) (uint64, error) {
	var base uint64
	err := c.transact("alloc", OpAlloc, []Seg{{0, pages}}, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("alloc", status)
		}
		var out [8]byte
		if _, err := io.ReadFull(c.r, out[:]); err != nil {
			return err
		}
		base = binary.LittleEndian.Uint64(out[:])
		return nil
	})
	return base, err
}

// Info returns the region size and pages in use.
func (c *Client) Info() (size uint64, inUse uint64, err error) {
	err = c.transact("info", OpInfo, nil, nil, func(status byte) error {
		if status != StatusOK {
			return statusErr("info", status)
		}
		var out [16]byte
		if _, err := io.ReadFull(c.r, out[:]); err != nil {
			return err
		}
		size = binary.LittleEndian.Uint64(out[:8])
		inUse = binary.LittleEndian.Uint64(out[8:])
		return nil
	})
	return size, inUse, err
}

// Backing adapts a Client into the backing interface a DiLOS computing
// node expects (fabric.Store + page-range allocation): with it, a
// simulated LibOS keeps every one of its pages on a real memnoded daemon —
// the data path crosses the network, the timing stays modelled. IO errors
// surface through fabric.Op.Err, where the paging stack's retry and
// failover machinery handles them like any injected fault.
type Backing struct {
	C    *Client
	PKey uint32
}

// NewBacking dials a memnoded daemon and wraps it as a Backing.
func NewBacking(addr string, pkey uint32) (*Backing, error) {
	c, err := Dial(addr, pkey)
	if err != nil {
		return nil, err
	}
	return &Backing{C: c, PKey: pkey}, nil
}

// ReadAt implements fabric.Store.
func (b *Backing) ReadAt(off uint64, p []byte) error {
	return b.C.Read(off, p)
}

// WriteAt implements fabric.Store.
func (b *Backing) WriteAt(off uint64, p []byte) error {
	return b.C.Write(off, p)
}

// AllocRange reserves contiguous pages on the daemon.
func (b *Backing) AllocRange(pages uint64) (uint64, error) {
	return b.C.Alloc(uint32(pages))
}

// Key returns the protection key presented on every request.
func (b *Backing) Key() uint32 { return b.PKey }
