// Package transport implements a real (non-simulated) wire protocol for a
// remote memory node over TCP: the one-sided READ/WRITE/vectored-op
// service a DiLOS computing node needs, runnable today on any pair of
// hosts (cmd/memnoded serves it; Client speaks it). The simulator's fabric
// models RDMA timing; this package demonstrates the same protocol working
// end-to-end outside the simulator — including the protection-key check
// the paper's driver enforces in the RNIC.
//
// Protocol v2 (see wire.go for the framing) is pipelined: one connection
// carries many tagged in-flight requests with out-of-order completions,
// doorbell batch frames, a PING health op and a DRAINING handshake for
// graceful shutdown. Client is the pipelined v2 endpoint; V1Client keeps
// the legacy one-request-at-a-time protocol, which Server still accepts
// (it sniffs the version per connection).
package transport

// Backing adapts a Client into the backing interface a DiLOS computing
// node expects (fabric.Store + page-range allocation): with it, a
// simulated LibOS keeps every one of its pages on a real memnoded daemon —
// the data path crosses the network, the timing stays modelled. IO errors
// surface through fabric.Op.Err, where the paging stack's retry and
// failover machinery handles them like any injected fault.
type Backing struct {
	C    *Client
	PKey uint32
}

// NewBacking dials a memnoded daemon and wraps it as a Backing.
func NewBacking(addr string, pkey uint32, opts ...Option) (*Backing, error) {
	c, err := Dial(addr, pkey, opts...)
	if err != nil {
		return nil, err
	}
	return &Backing{C: c, PKey: pkey}, nil
}

// ReadAt implements fabric.Store.
func (b *Backing) ReadAt(off uint64, p []byte) error {
	return b.C.Read(off, p)
}

// WriteAt implements fabric.Store.
func (b *Backing) WriteAt(off uint64, p []byte) error {
	return b.C.Write(off, p)
}

// AllocRange reserves contiguous pages on the daemon.
func (b *Backing) AllocRange(pages uint64) (uint64, error) {
	return b.C.Alloc(uint32(pages))
}

// Key returns the protection key presented on every request.
func (b *Backing) Key() uint32 { return b.PKey }
