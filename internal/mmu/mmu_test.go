package mmu

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dilos/internal/dram"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// demandZero maps any faulted page to a fresh zero frame.
type demandZero struct {
	pool     *dram.Pool
	writable bool
	faults   int
}

func (h *demandZero) HandleFault(c *Core, vpn pagetable.VPN, write bool) {
	h.faults++
	c.Proc.Advance(c.Costs.Exception)
	pte := c.Table.Lookup(vpn)
	if pte.Tag() == pagetable.TagLocal {
		// write fault on a read-only mapping: upgrade.
		c.Table.Set(vpn, pagetable.Local(pte.Frame(), true))
		c.Table.BumpGen()
		return
	}
	id, ok := h.pool.Alloc()
	if !ok {
		panic("test pool exhausted")
	}
	c.Table.Set(vpn, pagetable.Local(uint64(id), h.writable))
}

func newTestCore(frames int, writable bool) (*Core, *demandZero, *sim.Engine, *sim.Proc) {
	eng := sim.New()
	pool := dram.NewPool(frames)
	tbl := pagetable.New()
	h := &demandZero{pool: pool, writable: writable}
	var core *Core
	var proc *sim.Proc
	eng.Go("core", func(p *sim.Proc) { proc = p; p.Sleep(0) })
	eng.Run() // materialize the proc at t=0
	core = NewCore(proc, tbl, pool, h)
	return core, h, eng, proc
}

// run executes fn as the core's process.
func run(eng *sim.Engine, fn func()) {
	eng.Go("body", func(p *sim.Proc) { fn() })
	eng.Run()
}

func TestLoadStoreRoundTrip(t *testing.T) {
	core, h, eng, _ := newTestCore(16, true)
	run(eng, func() {
		want := []byte("hello, disaggregated world")
		core.Store(100, want)
		got := make([]byte, len(want))
		core.Load(100, got)
		if !bytes.Equal(got, want) {
			t.Errorf("got %q", got)
		}
	})
	if h.faults != 1 {
		t.Fatalf("faults = %d, want 1", h.faults)
	}
}

func TestCrossPageAccess(t *testing.T) {
	core, h, eng, _ := newTestCore(16, true)
	run(eng, func() {
		addr := uint64(pagetable.PageSize - 3)
		want := []byte{1, 2, 3, 4, 5, 6}
		core.Store(addr, want)
		got := make([]byte, 6)
		core.Load(addr, got)
		if !bytes.Equal(got, want) {
			t.Errorf("got %v", got)
		}
	})
	if h.faults != 2 {
		t.Fatalf("faults = %d, want 2 (two pages)", h.faults)
	}
}

func TestWordAccessors(t *testing.T) {
	core, _, eng, _ := newTestCore(4, true)
	run(eng, func() {
		core.StoreU64(64, 0xdeadbeefcafebabe)
		if core.LoadU64(64) != 0xdeadbeefcafebabe {
			t.Error("u64 round trip")
		}
		core.StoreU32(128, 0x12345678)
		if core.LoadU32(128) != 0x12345678 {
			t.Error("u32 round trip")
		}
		core.StoreU8(200, 0x7f)
		if core.LoadU8(200) != 0x7f {
			t.Error("u8 round trip")
		}
		// Endianness agrees with Load/Store byte order.
		var b [8]byte
		core.Load(64, b[:])
		if b[0] != 0xbe || b[7] != 0xde {
			t.Errorf("little-endian layout wrong: %x", b)
		}
	})
}

func TestWordCrossingPagePanics(t *testing.T) {
	core, _, eng, _ := newTestCore(4, true)
	run(eng, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		core.LoadU64(uint64(pagetable.PageSize) - 4)
	})
}

func TestTLBHitSkipsWalk(t *testing.T) {
	core, _, eng, _ := newTestCore(4, true)
	run(eng, func() {
		core.StoreU8(0, 1)
		misses := core.TLBMisses.N
		for i := 0; i < 100; i++ {
			core.LoadU8(uint64(i % 64))
		}
		if core.TLBMisses.N != misses {
			t.Errorf("TLB missed %d times on a hot page", core.TLBMisses.N-misses)
		}
	})
}

func TestGenerationBumpInvalidatesTLB(t *testing.T) {
	core, _, eng, _ := newTestCore(4, true)
	run(eng, func() {
		core.StoreU8(0, 1)
		misses := core.TLBMisses.N
		core.Table.BumpGen()
		core.LoadU8(0)
		if core.TLBMisses.N != misses+1 {
			t.Error("stale TLB entry used after shootdown")
		}
	})
}

func TestAccessedAndDirtyBits(t *testing.T) {
	core, _, eng, _ := newTestCore(4, true)
	run(eng, func() {
		core.LoadU8(0)
		pte := core.Table.Lookup(0)
		if !pte.Accessed() || pte.Dirty() {
			t.Errorf("after load: %v", pte)
		}
		core.StoreU8(0, 9)
		pte = core.Table.Lookup(0)
		if !pte.Dirty() {
			t.Errorf("after store: %v", pte)
		}
	})
}

func TestDirtyBitSetThroughTLB(t *testing.T) {
	// A store after a load-filled TLB entry must still set the dirty bit.
	core, _, eng, _ := newTestCore(4, true)
	run(eng, func() {
		core.LoadU8(0) // fills TLB without dirtyOK
		core.StoreU8(0, 1)
		if !core.Table.Lookup(0).Dirty() {
			t.Error("dirty bit lost on TLB-hit store")
		}
		// After the cleaner clears dirty + shootdown, a store must re-set it.
		pte := core.Table.Lookup(0)
		core.Table.Set(0, pte&^pagetable.BitDirty)
		core.Table.BumpGen()
		core.StoreU8(0, 2)
		if !core.Table.Lookup(0).Dirty() {
			t.Error("dirty bit not re-set after clean")
		}
	})
}

func TestWriteFaultOnReadOnly(t *testing.T) {
	core, h, eng, _ := newTestCore(4, false)
	run(eng, func() {
		core.LoadU8(0) // maps read-only
		if h.faults != 1 {
			t.Fatalf("faults = %d", h.faults)
		}
		core.StoreU8(0, 1) // write fault → upgrade
		if h.faults != 2 {
			t.Errorf("faults = %d, want 2", h.faults)
		}
		if !core.Table.Lookup(0).Writable() {
			t.Error("mapping not upgraded")
		}
	})
}

func TestExceptionCostCharged(t *testing.T) {
	core, _, eng, proc := newTestCore(4, true)
	run(eng, func() {
		before := proc.Now()
		core.LoadU8(0)
		if proc.Now()-before < core.Costs.Exception {
			t.Error("fault did not charge the exception cost")
		}
	})
}

func TestUnhandledFaultPanics(t *testing.T) {
	eng := sim.New()
	pool := dram.NewPool(2)
	var proc *sim.Proc
	eng.Go("core", func(p *sim.Proc) { proc = p })
	eng.Run()
	core := NewCore(proc, pagetable.New(), pool, nil)
	eng.Go("body", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		core.LoadU8(0)
	})
	eng.Run()
}

// Property: the simulated memory behaves like a flat byte array under
// arbitrary read/write sequences (random offsets/lengths within 16 pages).
func TestQuickMemorySemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		core, _, eng, _ := newTestCore(16, true)
		const size = 16 * pagetable.PageSize
		ref := make([]byte, size)
		ok := true
		run(eng, func() {
			for i := 0; i < 200; i++ {
				off := rng.Intn(size - 256)
				n := rng.Intn(256) + 1
				if rng.Intn(2) == 0 {
					buf := make([]byte, n)
					rng.Read(buf)
					core.Store(uint64(off), buf)
					copy(ref[off:], buf)
				} else {
					got := make([]byte, n)
					core.Load(uint64(off), got)
					if !bytes.Equal(got, ref[off:off+n]) {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBDirectMappedCollision(t *testing.T) {
	// Two pages whose VPNs collide in the direct-mapped TLB (same index)
	// must evict each other, not mix translations.
	core, _, eng, _ := newTestCore(8, true)
	run(eng, func() {
		a := uint64(0)                            // vpn 0
		b := uint64(tlbSize * pagetable.PageSize) // vpn tlbSize: same slot
		core.StoreU8(a, 1)
		core.StoreU8(b, 2)
		m0 := core.TLBMisses.N
		core.LoadU8(a) // must re-walk: b displaced a
		if core.TLBMisses.N != m0+1 {
			t.Error("colliding entry did not displace")
		}
		if core.LoadU8(a) != 1 || core.LoadU8(b) != 2 {
			t.Error("collision mixed up translations")
		}
	})
}

func TestFlushTLB(t *testing.T) {
	core, _, eng, _ := newTestCore(4, true)
	run(eng, func() {
		core.StoreU8(0, 1)
		m0 := core.TLBMisses.N
		core.FlushTLB()
		core.LoadU8(0)
		if core.TLBMisses.N != m0+1 {
			t.Error("flush did not invalidate")
		}
	})
}
