// Package mmu is the reproduction's stand-in for the hardware MMU: every
// workload memory access translates through the unified page table, with a
// per-core software TLB in front of it. Accesses to non-present PTEs raise
// a fault into the owning system's fault handler (DiLOS or Fastswap) —
// exactly the hardware/software boundary of the paper, with the trigger
// mechanism simulated and everything above it real.
//
// TLB coherence uses the classic generation trick: the page table carries a
// generation counter that any unmap/eviction/dirty-downgrade bumps
// (modelling a TLB shootdown); TLB entries cache the generation they were
// filled at and miss when it is stale.
package mmu

import (
	"fmt"

	"dilos/internal/dram"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// Costs is the CPU-side cost model for translation.
type Costs struct {
	TLBHit    sim.Time // per access that hits the TLB
	Walk      sim.Time // page-table walk on TLB miss
	Exception sim.Time // hardware exception delivery + handler entry (paper §3.1: 0.57 µs)
	CacheLine sim.Time // per 64 B of data touched
}

// DefaultCosts mirrors the testbed's measured constants.
func DefaultCosts() Costs {
	return Costs{
		TLBHit:    1 * sim.Nanosecond,
		Walk:      60 * sim.Nanosecond,
		Exception: 570 * sim.Nanosecond,
		CacheLine: 2 * sim.Nanosecond,
	}
}

// FaultHandler resolves a page fault. On return the PTE for vpn must be
// Local (the MMU retries the translation and faults again otherwise, which
// matches hardware restart semantics).
type FaultHandler interface {
	HandleFault(c *Core, vpn pagetable.VPN, write bool)
}

const (
	tlbSize = 512 // direct-mapped
	lineSz  = 64
)

type tlbEntry struct {
	vpn     pagetable.VPN
	gen     uint64
	frame   dram.FrameID
	valid   bool
	dirtyOK bool // dirty bit already set; stores may skip the walk
}

// Core is one simulated CPU core: a sim process plus its TLB.
type Core struct {
	Proc    *sim.Proc
	Table   *pagetable.Table
	Pool    dram.Frames
	Handler FaultHandler
	Costs   Costs

	tlb [tlbSize]tlbEntry

	Accesses  stats.Counter
	TLBMisses stats.Counter
	Faults    stats.Counter
}

// NewCore builds a core over a page table and frame pool.
func NewCore(p *sim.Proc, tbl *pagetable.Table, pool dram.Frames, h FaultHandler) *Core {
	return &Core{
		Proc: p, Table: tbl, Pool: pool, Handler: h,
		Costs:     DefaultCosts(),
		Accesses:  stats.Counter{Name: "mmu.accesses"},
		TLBMisses: stats.Counter{Name: "mmu.tlb_misses"},
		Faults:    stats.Counter{Name: "mmu.faults"},
	}
}

// FlushTLB drops every cached translation on this core.
func (c *Core) FlushTLB() {
	for i := range c.tlb {
		c.tlb[i].valid = false
	}
}

// translate returns the frame backing vpn, faulting as needed.
func (c *Core) translate(vpn pagetable.VPN, write bool) dram.FrameID {
	c.Accesses.Inc()
	e := &c.tlb[uint64(vpn)%tlbSize]
	gen := c.Table.Gen()
	if e.valid && e.vpn == vpn && e.gen == gen && (!write || e.dirtyOK) {
		c.Proc.Advance(c.Costs.TLBHit)
		return e.frame
	}
	c.TLBMisses.Inc()
	for {
		c.Proc.Advance(c.Costs.Walk)
		pte := c.Table.Lookup(vpn)
		if pte.Tag() == pagetable.TagLocal && (!write || pte.Writable()) {
			// Set accessed (and dirty on store) like the hardware walker.
			upd := pte | pagetable.BitAccessed
			if write {
				upd |= pagetable.BitDirty
			}
			if upd != pte {
				c.Table.Set(vpn, upd)
			}
			gen = c.Table.Gen()
			*e = tlbEntry{
				vpn: vpn, gen: gen,
				frame:   dram.FrameID(pte.Frame()),
				valid:   true,
				dirtyOK: write || pte.Dirty(),
			}
			return e.frame
		}
		// Page fault: invoke the system handler. The handler charges the
		// hardware exception cost itself (Costs.Exception), because some
		// fault flavours would not trap at all on real hardware (e.g. a
		// page whose fetch completed but whose mapping the parallel
		// prefetch mapper had not yet installed in this serialized
		// simulation).
		c.Faults.Inc()
		if c.Handler == nil {
			panic(fmt.Sprintf("mmu: unhandled fault at vpn %d (%v)", vpn, pte))
		}
		c.Handler.HandleFault(c, vpn, write)
	}
}

// Touch translates vpn (as a read) without moving data — used by systems
// and tests to force a page resident.
func (c *Core) Touch(vpn pagetable.VPN, write bool) {
	c.translate(vpn, write)
}

func lines(n int) sim.Time { return sim.Time((n + lineSz - 1) / lineSz) }

// Load copies len(p) bytes from virtual address addr into p.
func (c *Core) Load(addr uint64, p []byte) {
	for len(p) > 0 {
		vpn := pagetable.VPNOf(addr)
		off := addr & (pagetable.PageSize - 1)
		n := pagetable.PageSize - int(off)
		if n > len(p) {
			n = len(p)
		}
		frame := c.translate(vpn, false)
		copy(p[:n], c.Pool.Bytes(frame)[off:])
		c.Proc.Advance(lines(n) * c.Costs.CacheLine)
		p = p[n:]
		addr += uint64(n)
	}
}

// Store copies p to virtual address addr.
func (c *Core) Store(addr uint64, p []byte) {
	for len(p) > 0 {
		vpn := pagetable.VPNOf(addr)
		off := addr & (pagetable.PageSize - 1)
		n := pagetable.PageSize - int(off)
		if n > len(p) {
			n = len(p)
		}
		frame := c.translate(vpn, true)
		copy(c.Pool.Bytes(frame)[off:], p[:n])
		c.Proc.Advance(lines(n) * c.Costs.CacheLine)
		p = p[n:]
		addr += uint64(n)
	}
}

// LoadU64 reads a little-endian uint64 (must not cross a page boundary —
// aligned accesses never do).
func (c *Core) LoadU64(addr uint64) uint64 {
	frame, off := c.word(addr, 8, false)
	b := c.Pool.Bytes(frame)[off:]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// StoreU64 writes a little-endian uint64.
func (c *Core) StoreU64(addr uint64, v uint64) {
	frame, off := c.word(addr, 8, true)
	b := c.Pool.Bytes(frame)[off:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

// LoadU32 reads a little-endian uint32.
func (c *Core) LoadU32(addr uint64) uint32 {
	frame, off := c.word(addr, 4, false)
	b := c.Pool.Bytes(frame)[off:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// StoreU32 writes a little-endian uint32.
func (c *Core) StoreU32(addr uint64, v uint32) {
	frame, off := c.word(addr, 4, true)
	b := c.Pool.Bytes(frame)[off:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// LoadU8 reads one byte.
func (c *Core) LoadU8(addr uint64) byte {
	frame, off := c.word(addr, 1, false)
	return c.Pool.Bytes(frame)[off]
}

// StoreU8 writes one byte.
func (c *Core) StoreU8(addr uint64, v byte) {
	frame, off := c.word(addr, 1, true)
	c.Pool.Bytes(frame)[off] = v
}

func (c *Core) word(addr uint64, size int, write bool) (dram.FrameID, uint64) {
	off := addr & (pagetable.PageSize - 1)
	if int(off)+size > pagetable.PageSize {
		panic(fmt.Sprintf("mmu: %d-byte access at %#x crosses a page", size, addr))
	}
	frame := c.translate(pagetable.VPNOf(addr), write)
	c.Proc.Advance(c.Costs.CacheLine)
	return frame, off
}
