// Package gapbs reimplements the slice of the GAP Benchmark Suite the
// paper evaluates (Figure 9): PageRank and betweenness centrality over a
// CSR graph whose offset, neighbour, and score arrays live in the
// simulated disaggregated address space. The graph generator is an R-MAT
// (Kronecker) sampler, the same family as GAPBS's synthetic inputs and a
// stand-in for the Twitter data-set's power-law degree distribution.
//
// Both kernels run on multiple cores (sim processes) with barrier-
// synchronized phases, matching the paper's 4-thread runs. PageRank's
// pull-direction gather makes mostly-sequential sweeps with random reads
// into the contributions array; betweenness centrality's BFS + dependency
// accumulation is one indirection more random — which is exactly why the
// paper sees DiLOS' advantage grow from PR to BC.
package gapbs

import (
	"math/rand"

	"dilos/internal/sim"
	"dilos/internal/space"
)

// Graph is a CSR graph in simulated memory (undirected: edges stored both
// ways). Offsets are u64, neighbour ids u32.
type Graph struct {
	N, M    uint64 // vertices, directed edge slots (2x undirected edges)
	OffBase uint64 // (N+1) u64 offsets
	NbrBase uint64 // M u32 neighbour ids
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(sp space.Space, v uint64) uint64 {
	return sp.LoadU64(g.OffBase+(v+1)*8) - sp.LoadU64(g.OffBase+v*8)
}

// Neighbors iterates v's neighbours, calling fn for each.
func (g *Graph) Neighbors(sp space.Space, v uint64, fn func(u uint64)) {
	start := sp.LoadU64(g.OffBase + v*8)
	end := sp.LoadU64(g.OffBase + (v+1)*8)
	for e := start; e < end; e++ {
		fn(uint64(sp.LoadU32(g.NbrBase + e*4)))
	}
}

// BuildRMAT generates an R-MAT graph with 2^scale vertices and avgDeg
// average (undirected) degree, builds the CSR host-side, and writes it
// through sp. Self-loops and duplicate edges are kept (as GAPBS's -u
// generator does before optional dedup).
func BuildRMAT(sp space.Space, scale int, avgDeg int, seed int64) *Graph {
	n := uint64(1) << scale
	edges := n * uint64(avgDeg) / 2
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19 // Graph500 parameters
	srcs := make([]uint32, 0, edges*2)
	dsts := make([]uint32, 0, edges*2)
	for e := uint64(0); e < edges; e++ {
		var u, v uint64
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		srcs = append(srcs, uint32(u), uint32(v))
		dsts = append(dsts, uint32(v), uint32(u))
	}
	// Count degrees, prefix-sum, fill.
	deg := make([]uint64, n+1)
	for _, s := range srcs {
		deg[s+1]++
	}
	for i := uint64(1); i <= n; i++ {
		deg[i] += deg[i-1]
	}
	m := deg[n]
	cursor := make([]uint64, n)
	nbrs := make([]uint32, m)
	for i, s := range srcs {
		pos := deg[s] + cursor[s]
		cursor[s]++
		nbrs[pos] = dsts[i]
	}
	g := &Graph{N: n, M: m}
	g.OffBase = sp.Malloc((n + 1) * 8)
	g.NbrBase = sp.Malloc(m * 4)
	for i := uint64(0); i <= n; i++ {
		sp.StoreU64(g.OffBase+i*8, deg[i])
	}
	for i := uint64(0); i < m; i++ {
		sp.StoreU32(g.NbrBase+i*4, nbrs[i])
	}
	return g
}

// prShift is the fixed-point scale for PageRank scores (Q32.32-ish).
const prShift = 32

// PageRank runs `iters` pull-direction iterations across the given worker
// spaces (one per core), with damping 0.85. Scores and contributions are
// u64 fixed-point arrays in simulated memory (allocated from spaces[0]).
// Returns the final score of vertex 0 (a determinism checksum) and the sum
// of all scores.
func PageRank(spaces []space.Space, barrier *sim.Barrier, g *Graph, iters int,
	scoreBase, contribBase uint64, worker int) (v0 uint64, sum uint64) {
	sp := spaces[worker]
	nw := uint64(len(spaces))
	lo := g.N * uint64(worker) / nw
	hi := g.N * uint64(worker+1) / nw

	init := uint64((1 << prShift)) / g.N
	for v := lo; v < hi; v++ {
		sp.StoreU64(scoreBase+v*8, init)
	}
	barrier.Wait(procOf(sp))

	const damp = 85
	base := (uint64(1<<prShift) / g.N) * (100 - damp) / 100
	for it := 0; it < iters; it++ {
		// Phase 1: contributions (sequential pass over own range).
		for v := lo; v < hi; v++ {
			d := g.Degree(sp, v)
			if d == 0 {
				sp.StoreU64(contribBase+v*8, 0)
				continue
			}
			sp.StoreU64(contribBase+v*8, sp.LoadU64(scoreBase+v*8)/d)
		}
		barrier.Wait(procOf(sp))
		// Phase 2: gather (random reads into contributions).
		for v := lo; v < hi; v++ {
			var acc uint64
			g.Neighbors(sp, v, func(u uint64) {
				acc += sp.LoadU64(contribBase + u*8)
			})
			sp.StoreU64(scoreBase+v*8, base+acc*damp/100)
		}
		barrier.Wait(procOf(sp))
	}
	for v := lo; v < hi; v++ {
		sum += sp.LoadU64(scoreBase + v*8)
	}
	if lo == 0 {
		v0 = sp.LoadU64(scoreBase)
	}
	return v0, sum
}

// procOf extracts the sim process from a Space implementation (all our
// Space implementations expose Proc()).
func procOf(sp space.Space) *sim.Proc {
	type hasProc interface{ Proc() *sim.Proc }
	return sp.(hasProc).Proc()
}

// BCResult is a betweenness-centrality run's output.
type BCResult struct {
	SumCentrality uint64
	MaxCentrality uint64
}

// BC computes approximate betweenness centrality from `sources` sample
// roots (Brandes' algorithm), the sources partitioned across workers. The
// depth, sigma, and delta arrays live in simulated memory; frontier queues
// are core-local. Each worker accumulates into its own centrality stripe
// (centralBase holds workers×N u64) to avoid read-modify-write races; the
// final reduction sums the stripes. Returns per-worker partials that the
// caller sums.
//
// Layout at workBase (per worker w, stride 3*N*8 bytes):
//
//	depth  N u64  (^0 = unvisited)
//	sigma  N u64
//	delta  N u64  (fixed point, prShift)
func BC(spaces []space.Space, barrier *sim.Barrier, g *Graph, sources []uint64,
	centralBase, workBase uint64, worker int) BCResult {
	sp := spaces[worker]
	nw := len(spaces)
	stride := g.N * 8
	depthBase := workBase + uint64(worker)*3*stride
	sigmaBase := depthBase + stride
	deltaBase := sigmaBase + stride
	myCentral := centralBase + uint64(worker)*stride

	for v := uint64(0); v < g.N; v++ {
		sp.StoreU64(myCentral+v*8, 0)
	}
	barrier.Wait(procOf(sp))

	const unvisited = ^uint64(0)
	for si := worker; si < len(sources); si += nw {
		root := sources[si]
		for v := uint64(0); v < g.N; v++ {
			sp.StoreU64(depthBase+v*8, unvisited)
			sp.StoreU64(sigmaBase+v*8, 0)
			sp.StoreU64(deltaBase+v*8, 0)
		}
		sp.StoreU64(depthBase+root*8, 0)
		sp.StoreU64(sigmaBase+root*8, 1)
		// Forward BFS, recording the visit order.
		order := []uint64{root}
		frontier := []uint64{root}
		depth := uint64(0)
		for len(frontier) > 0 {
			var next []uint64
			for _, v := range frontier {
				g.Neighbors(sp, v, func(u uint64) {
					du := sp.LoadU64(depthBase + u*8)
					if du == unvisited {
						sp.StoreU64(depthBase+u*8, depth+1)
						sp.StoreU64(sigmaBase+u*8, sp.LoadU64(sigmaBase+v*8))
						next = append(next, u)
						order = append(order, u)
					} else if du == depth+1 {
						sp.StoreU64(sigmaBase+u*8,
							sp.LoadU64(sigmaBase+u*8)+sp.LoadU64(sigmaBase+v*8))
					}
				})
			}
			frontier = next
			depth++
		}
		// Backward dependency accumulation.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			dv := sp.LoadU64(depthBase + v*8)
			sigV := sp.LoadU64(sigmaBase + v*8)
			deltaV := sp.LoadU64(deltaBase + v*8)
			g.Neighbors(sp, v, func(u uint64) {
				if sp.LoadU64(depthBase+u*8) == dv+1 {
					sigU := sp.LoadU64(sigmaBase + u*8)
					if sigU == 0 {
						return
					}
					contrib := (sigV * ((1 << prShift) + sp.LoadU64(deltaBase+u*8))) / sigU
					deltaV += contrib
				}
			})
			sp.StoreU64(deltaBase+v*8, deltaV)
			if v != root {
				sp.StoreU64(myCentral+v*8, sp.LoadU64(myCentral+v*8)+deltaV)
			}
		}
	}
	barrier.Wait(procOf(sp))

	// Reduction over all stripes, striped by vertex range per worker.
	lo := g.N * uint64(worker) / uint64(nw)
	hi := g.N * uint64(worker+1) / uint64(nw)
	var res BCResult
	for v := lo; v < hi; v++ {
		var c uint64
		for w := 0; w < nw; w++ {
			c += sp.LoadU64(centralBase + uint64(w)*stride + v*8)
		}
		res.SumCentrality += c
		if c > res.MaxCentrality {
			res.MaxCentrality = c
		}
	}
	return res
}

// CC computes connected components with label propagation
// (Shiloach-Vishkin style: each vertex repeatedly adopts the minimum label
// among itself and its neighbours until a fixpoint). Labels live in
// simulated memory at labelBase (N u64); vertices are partitioned across
// workers with barrier-synchronized rounds. changedFlags is one shared
// bool per worker (caller-allocated). Returns the number of components
// counted over the worker's own range (callers sum) and the round count.
func CC(spaces []space.Space, barrier *sim.Barrier, g *Graph,
	labelBase uint64, changedFlags []bool, worker int) (components uint64, rounds int) {
	sp := spaces[worker]
	nw := uint64(len(spaces))
	lo := g.N * uint64(worker) / nw
	hi := g.N * uint64(worker+1) / nw

	for v := lo; v < hi; v++ {
		sp.StoreU64(labelBase+v*8, v)
	}
	barrier.Wait(procOf(sp))

	for {
		rounds++
		changed := false
		for v := lo; v < hi; v++ {
			min := sp.LoadU64(labelBase + v*8)
			g.Neighbors(sp, v, func(u uint64) {
				if l := sp.LoadU64(labelBase + u*8); l < min {
					min = l
				}
			})
			if min < sp.LoadU64(labelBase+v*8) {
				sp.StoreU64(labelBase+v*8, min)
				changed = true
			}
		}
		changedFlags[worker] = changed
		barrier.Wait(procOf(sp))
		any := false
		for _, c := range changedFlags {
			any = any || c
		}
		barrier.Wait(procOf(sp)) // everyone reads before worker 0 resets
		if worker == 0 {
			for i := range changedFlags {
				changedFlags[i] = false
			}
		}
		barrier.Wait(procOf(sp))
		if !any {
			break
		}
	}
	for v := lo; v < hi; v++ {
		if sp.LoadU64(labelBase+v*8) == v {
			components++
		}
	}
	return components, rounds
}
