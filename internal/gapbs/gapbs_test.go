package gapbs

import (
	"testing"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/space"
)

func localWorkers(n int) ([]space.Space, *sim.Engine, *space.Local) {
	eng := sim.New()
	base := space.NewLocal(512 << 20)
	spaces := make([]space.Space, n)
	// Local spaces share memory; each worker gets its own proc wrapper.
	for i := 0; i < n; i++ {
		l := *base // copy shares Mem
		spaces[i] = &l
	}
	return spaces, eng, base
}

func TestBuildRMATIsValidCSR(t *testing.T) {
	sp := space.NewLocal(256 << 20)
	g := BuildRMAT(sp, 10, 8, 1)
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	// Offsets monotone; neighbour ids in range; M consistent.
	prev := uint64(0)
	for v := uint64(0); v <= g.N; v++ {
		off := sp.LoadU64(g.OffBase + v*8)
		if off < prev {
			t.Fatal("offsets not monotone")
		}
		prev = off
	}
	if prev != g.M {
		t.Fatalf("last offset %d != M %d", prev, g.M)
	}
	var total uint64
	for v := uint64(0); v < g.N; v++ {
		total += g.Degree(sp, v)
		g.Neighbors(sp, v, func(u uint64) {
			if u >= g.N {
				t.Fatalf("neighbour %d out of range", u)
			}
		})
	}
	if total != g.M {
		t.Fatalf("degree sum %d != M %d", total, g.M)
	}
}

func TestRMATIsPowerLawish(t *testing.T) {
	sp := space.NewLocal(256 << 20)
	g := BuildRMAT(sp, 12, 16, 2)
	var max, sum uint64
	for v := uint64(0); v < g.N; v++ {
		d := g.Degree(sp, v)
		sum += d
		if d > max {
			max = d
		}
	}
	avg := sum / g.N
	if max < avg*8 {
		t.Fatalf("degree distribution too flat: max=%d avg=%d", max, avg)
	}
}

func runPR(t *testing.T, workers int) (uint64, uint64) {
	t.Helper()
	spaces, eng, base := localWorkers(workers)
	g := BuildRMAT(base, 10, 8, 3)
	scoreBase := base.Malloc(g.N * 8)
	contribBase := base.Malloc(g.N * 8)
	barrier := sim.NewBarrier(workers)
	var v0, sum uint64
	for w := 0; w < workers; w++ {
		w := w
		eng.Go("pr", func(p *sim.Proc) {
			spaces[w].(*space.Local).P = p
			pv0, psum := PageRank(spaces, barrier, g, 5, scoreBase, contribBase, w)
			if pv0 != 0 {
				v0 = pv0
			}
			sum += psum
		})
	}
	eng.Run()
	return v0, sum
}

func TestPageRankConservesMass(t *testing.T) {
	_, sum := runPR(t, 1)
	// Total PageRank mass stays below 1.0 and above the damping floor:
	// dangling (zero-degree) RMAT vertices leak their damped mass, so the
	// sum lands between (1-d)=0.15 and 1.0 — this graph keeps ~0.72.
	one := uint64(1) << prShift
	if sum < one*50/100 || sum > one*101/100 {
		t.Fatalf("mass = %d / %d", sum, one)
	}
}

func TestPageRankThreadCountInvariant(t *testing.T) {
	v1, s1 := runPR(t, 1)
	v4, s4 := runPR(t, 4)
	if v1 != v4 || s1 != s4 {
		t.Fatalf("parallel PR diverges: v0 %d vs %d, sum %d vs %d", v1, v4, s1, s4)
	}
}

func TestBCProducesCentrality(t *testing.T) {
	const workers = 2
	spaces, eng, base := localWorkers(workers)
	g := BuildRMAT(base, 9, 8, 4)
	centralBase := base.Malloc(uint64(workers) * g.N * 8)
	workBase := base.Malloc(uint64(workers) * 3 * g.N * 8)
	barrier := sim.NewBarrier(workers)
	sources := []uint64{1, 5, 9, 13}
	var sum uint64
	for w := 0; w < workers; w++ {
		w := w
		eng.Go("bc", func(p *sim.Proc) {
			spaces[w].(*space.Local).P = p
			res := BC(spaces, barrier, g, sources, centralBase, workBase, w)
			sum += res.SumCentrality
		})
	}
	eng.Run()
	if sum == 0 {
		t.Fatal("no centrality accumulated")
	}
}

func TestBCWorkerCountInvariant(t *testing.T) {
	run := func(workers int) uint64 {
		spaces, eng, base := localWorkers(workers)
		g := BuildRMAT(base, 8, 8, 5)
		centralBase := base.Malloc(uint64(workers) * g.N * 8)
		workBase := base.Malloc(uint64(workers) * 3 * g.N * 8)
		barrier := sim.NewBarrier(workers)
		sources := []uint64{2, 4, 6, 8}
		var sum uint64
		for w := 0; w < workers; w++ {
			w := w
			eng.Go("bc", func(p *sim.Proc) {
				spaces[w].(*space.Local).P = p
				sum += BC(spaces, barrier, g, sources, centralBase, workBase, w).SumCentrality
			})
		}
		eng.Run()
		return sum
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("BC diverges with workers: %d vs %d", a, b)
	}
}

func TestPageRankOnDiLOSFourThreads(t *testing.T) {
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 256, Cores: 4, RemoteBytes: 256 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	setup := make(chan struct{})
	_ = setup
	var g *Graph
	var scoreBase, contribBase uint64
	spaces := make([]space.Space, 4)
	barrier := sim.NewBarrier(4)
	ready := sim.NewBarrier(4 + 1)
	// Builder thread prepares the graph, then workers run.
	sys.Launch("builder", 0, func(sp *core.DDCProc) {
		g = BuildRMAT(sp, 9, 8, 6)
		scoreBase = sp.Malloc(g.N * 8)
		contribBase = sp.Malloc(g.N * 8)
		ready.Wait(sp.Proc())
	})
	var sum uint64
	for w := 0; w < 4; w++ {
		w := w
		sys.Launch("pr", w, func(sp *core.DDCProc) {
			spaces[w] = sp
			ready.Wait(sp.Proc())
			_, psum := PageRank(spaces, barrier, g, 3, scoreBase, contribBase, w)
			sum += psum
		})
	}
	eng.Run()
	if sum == 0 {
		t.Fatal("no PageRank mass")
	}
	if sys.MajorFaults.N == 0 {
		t.Fatal("no paging exercised")
	}
}

func TestCCOnKnownGraph(t *testing.T) {
	// Build a graph with two obvious components by hand: a path 0-1-2 and
	// a triangle 4-5-6 (vertex 3 and 7 isolated).
	sp := space.NewLocal(16 << 20)
	edges := [][2]uint32{{0, 1}, {1, 2}, {4, 5}, {5, 6}, {6, 4}}
	n := uint64(8)
	deg := make([]uint64, n+1)
	for _, e := range edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for i := uint64(1); i <= n; i++ {
		deg[i] += deg[i-1]
	}
	nbrs := make([]uint32, deg[n])
	cursor := make([]uint64, n)
	add := func(a, b uint32) {
		nbrs[deg[a]+cursor[a]] = b
		cursor[a]++
	}
	for _, e := range edges {
		add(e[0], e[1])
		add(e[1], e[0])
	}
	g := &Graph{N: n, M: deg[n]}
	g.OffBase = sp.Malloc((n + 1) * 8)
	g.NbrBase = sp.Malloc(uint64(len(nbrs)) * 4)
	for i := uint64(0); i <= n; i++ {
		sp.StoreU64(g.OffBase+i*8, deg[i])
	}
	for i, v := range nbrs {
		sp.StoreU32(g.NbrBase+uint64(i)*4, v)
	}
	eng := sim.New()
	labelBase := sp.Malloc(n * 8)
	var comps uint64
	flags := make([]bool, 1)
	barrier := sim.NewBarrier(1)
	eng.Go("cc", func(p *sim.Proc) {
		sp.P = p
		c, _ := CC([]space.Space{sp}, barrier, g, labelBase, flags, 0)
		comps = c
	})
	eng.Run()
	if comps != 4 { // {0,1,2}, {3}, {4,5,6}, {7}
		t.Fatalf("components = %d, want 4", comps)
	}
}

func TestCCWorkerInvariantAndPressure(t *testing.T) {
	run := func(workers int) uint64 {
		spaces, eng, base := localWorkers(workers)
		g := BuildRMAT(base, 9, 6, 12)
		labelBase := base.Malloc(g.N * 8)
		flags := make([]bool, workers)
		barrier := sim.NewBarrier(workers)
		var total uint64
		for w := 0; w < workers; w++ {
			w := w
			eng.Go("cc", func(p *sim.Proc) {
				spaces[w].(*space.Local).P = p
				c, _ := CC(spaces, barrier, g, labelBase, flags, w)
				total += c
			})
		}
		eng.Run()
		return total
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("CC diverges with workers: %d vs %d", a, b)
	}

	// And on DiLOS under pressure, with data integrity via component count.
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 96, Cores: 2, RemoteBytes: 128 << 20,
		Fabric: fabric.DefaultParams(), Prefetcher: prefetch.NewTrend(),
	})
	sys.Start()
	spaces := make([]space.Space, 2)
	barrier := sim.NewBarrier(2)
	ready := sim.NewBarrier(3)
	var g *Graph
	var labelBase uint64
	flags := make([]bool, 2)
	sys.Launch("builder", 0, func(sp *core.DDCProc) {
		g = BuildRMAT(sp, 9, 6, 12)
		labelBase = sp.Malloc(g.N * 8)
		ready.Wait(sp.Proc())
	})
	var total uint64
	for w := 0; w < 2; w++ {
		w := w
		sys.Launch("cc", w, func(sp *core.DDCProc) {
			spaces[w] = sp
			ready.Wait(sp.Proc())
			c, _ := CC(spaces, barrier, g, labelBase, flags, w)
			total += c
		})
	}
	eng.Run()
	if total != run(1) {
		t.Fatalf("CC under paging (%d) diverges from local (%d)", total, run(1))
	}
}
