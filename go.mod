module dilos

go 1.23
