// Package dilos_bench is the benchmark harness required by the evaluation:
// one testing.B benchmark per paper table and figure. Each benchmark runs
// the corresponding experiment from internal/experiments at a reduced (but
// shape-preserving) scale and reports the headline values as custom
// metrics, so `go test -bench=. -benchmem` regenerates the whole
// evaluation. `go run ./cmd/dilosbench -exp all` prints the full
// paper-format rows at default scale.
package dilos_bench

import (
	"fmt"
	"testing"

	"dilos/internal/core"
	"dilos/internal/experiments"
	"dilos/internal/fabric"
	"dilos/internal/kvcache"
	"dilos/internal/obs"
	"dilos/internal/pagemgr"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
)

// benchScale keeps every benchmark iteration under a couple of seconds
// while preserving the cache-fraction ratios that drive the shapes.
func benchScale() experiments.Scale {
	return experiments.Scale{
		SeqPages:      4096,
		QuicksortN:    256 << 10,
		KMeansPoints:  40_000,
		SnappyBytes:   2 << 20,
		DataframeRows: 40_000,
		GraphScale:    12,
		RedisKeys4K:   512,
		RedisKeys64K:  64,
		RedisKeysMix:  96,
		RedisQueries:  1000,
		RedisLists:    32,
		RedisListElem: 4000,
	}
}

// BenchmarkFig1FastswapFaultBreakdown regenerates Figure 1.
func BenchmarkFig1FastswapFaultBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(benchScale())
		b.ReportMetric(rows[0].Total.Micros(), "avg-fault-us")
		b.ReportMetric(rows[0].Reclaim.Micros(), "reclaim-us")
		b.ReportMetric(rows[1].Total.Micros(), "noreclaim-fault-us")
	}
}

// BenchmarkFig2RDMALatency regenerates Figure 2.
func BenchmarkFig2RDMALatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2()
		for _, r := range rows {
			if r.Size == 128 || r.Size == 4096 {
				b.ReportMetric(r.ReadLat.Micros(), fmt.Sprintf("read-%dB-us", r.Size))
			}
		}
	}
}

// BenchmarkTab1FastswapFaultCounts regenerates Table 1.
func BenchmarkTab1FastswapFaultCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Tab1(benchScale())
		b.ReportMetric(100*float64(r.Major)/float64(r.Total), "major-pct")
		b.ReportMetric(float64(r.Minor), "minor-faults")
	}
}

// BenchmarkTab2SequentialThroughput regenerates Table 2.
func BenchmarkTab2SequentialThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Tab2(benchScale()) {
			tag := map[experiments.SystemKind]string{
				experiments.SysFastswap:   "fastswap",
				experiments.SysDiLOSNone:  "dilos-none",
				experiments.SysDiLOSRA:    "dilos-ra",
				experiments.SysDiLOSTrend: "dilos-trend",
			}[r.System]
			b.ReportMetric(r.ReadGBs, tag+"-read-GBs")
			b.ReportMetric(r.WriteGBs, tag+"-write-GBs")
		}
	}
}

// BenchmarkFig6FaultBreakdownComparison regenerates Figure 6.
func BenchmarkFig6FaultBreakdownComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(benchScale())
		var fs, dl float64
		for _, r := range rows {
			switch r.Label {
			case "Fastswap":
				fs = r.Total.Micros()
			case "DiLOS":
				dl = r.Total.Micros()
			}
		}
		b.ReportMetric(fs, "fastswap-fault-us")
		b.ReportMetric(dl, "dilos-fault-us")
		b.ReportMetric(100*(1-dl/fs), "reduction-pct")
	}
}

// BenchmarkTab3FaultCounts regenerates Table 3.
func BenchmarkTab3FaultCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Tab3(benchScale()) {
			if r.System == experiments.SysDiLOSRA {
				b.ReportMetric(float64(r.Major), "dilos-ra-major")
				b.ReportMetric(float64(r.Minor), "dilos-ra-minor")
			}
			if r.System == experiments.SysFastswap {
				b.ReportMetric(float64(r.Minor), "fastswap-minor")
			}
		}
	}
}

// reportSpeedup reports DiLOS' advantage over Fastswap at 12.5% local.
func reportSpeedup(b *testing.B, rows []experiments.CompletionRow) {
	var fs, dl float64
	for _, r := range rows {
		if r.Fraction != 0.125 {
			continue
		}
		switch r.System {
		case experiments.SysFastswap:
			fs = r.Elapsed.Seconds()
		case experiments.SysDiLOSRA:
			dl = r.Elapsed.Seconds()
		}
	}
	b.ReportMetric(fs*1000, "fastswap-12.5pct-ms")
	b.ReportMetric(dl*1000, "dilos-12.5pct-ms")
	if dl > 0 {
		b.ReportMetric(fs/dl, "dilos-speedup-x")
	}
}

// BenchmarkFig7aQuicksort regenerates Figure 7(a).
func BenchmarkFig7aQuicksort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpeedup(b, experiments.Fig7a(benchScale()))
	}
}

// BenchmarkFig7bKMeans regenerates Figure 7(b).
func BenchmarkFig7bKMeans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpeedup(b, experiments.Fig7b(benchScale()))
	}
}

// BenchmarkFig7cSnappyCompression regenerates Figure 7(c).
func BenchmarkFig7cSnappyCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7c(benchScale())
		reportSpeedup(b, rows)
		for _, r := range rows {
			if r.System == experiments.SysAIFM && r.Fraction == 0.125 {
				b.ReportMetric(r.Elapsed.Seconds()*1000, "aifm-12.5pct-ms")
			}
		}
	}
}

// BenchmarkFig7dSnappyDecompression regenerates Figure 7(d).
func BenchmarkFig7dSnappyDecompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpeedup(b, experiments.Fig7d(benchScale()))
	}
}

// BenchmarkFig8DataFrame regenerates Figure 8.
func BenchmarkFig8DataFrame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(benchScale())
		reportSpeedup(b, rows)
		var aifm, dilos float64
		for _, r := range rows {
			if r.Fraction == 1.0 {
				switch r.System {
				case experiments.SysAIFM:
					aifm = r.Elapsed.Seconds()
				case experiments.SysDiLOSRA:
					dilos = r.Elapsed.Seconds()
				}
			}
		}
		if dilos > 0 {
			// The paper's headline: AIFM 50–83% slower at 100% local.
			b.ReportMetric(100*(aifm/dilos-1), "aifm-tax-at-100pct-pct")
		}
	}
}

// BenchmarkFig9aPageRank regenerates Figure 9(a).
func BenchmarkFig9aPageRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpeedup(b, experiments.Fig9a(benchScale()))
	}
}

// BenchmarkFig9bBetweennessCentrality regenerates Figure 9(b).
func BenchmarkFig9bBetweennessCentrality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpeedup(b, experiments.Fig9b(benchScale()))
	}
}

func reportRedis(b *testing.B, rows []experiments.RedisRow) {
	var fs, none, app float64
	for _, r := range rows {
		if r.Fraction != 0.125 {
			continue
		}
		switch r.System {
		case experiments.SysFastswap:
			fs = r.OpsPerS
		case experiments.SysDiLOSNone:
			none = r.OpsPerS
		case experiments.SysDiLOSApp:
			app = r.OpsPerS
		}
	}
	b.ReportMetric(fs, "fastswap-ops")
	b.ReportMetric(none, "dilos-none-ops")
	b.ReportMetric(app, "dilos-app-ops")
	if fs > 0 {
		b.ReportMetric(app/fs, "app-vs-fastswap-x")
	}
}

// BenchmarkFig10aRedisGET4K regenerates Figure 10(a).
func BenchmarkFig10aRedisGET4K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRedis(b, experiments.Fig10a(benchScale()))
	}
}

// BenchmarkFig10bRedisGET64K regenerates Figure 10(b).
func BenchmarkFig10bRedisGET64K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRedis(b, experiments.Fig10b(benchScale()))
	}
}

// BenchmarkFig10cRedisGETMixed regenerates Figure 10(c).
func BenchmarkFig10cRedisGETMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRedis(b, experiments.Fig10c(benchScale()))
	}
}

// BenchmarkFig10dRedisLRANGE regenerates Figure 10(d).
func BenchmarkFig10dRedisLRANGE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRedis(b, experiments.Fig10d(benchScale()))
	}
}

// BenchmarkTab4TailLatency regenerates Table 4.
func BenchmarkTab4TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Tab4(benchScale()) {
			switch r.System {
			case experiments.SysFastswap:
				b.ReportMetric(r.GetP99.Micros(), "fastswap-get-p99-us")
				b.ReportMetric(r.LRangeP99.Micros(), "fastswap-lrange-p99-us")
			case experiments.SysDiLOSApp:
				b.ReportMetric(r.GetP99.Micros(), "dilos-app-get-p99-us")
				b.ReportMetric(r.LRangeP99.Micros(), "dilos-app-lrange-p99-us")
			}
		}
	}
}

// BenchmarkFig12GuidedPagingBandwidth regenerates Figure 12.
func BenchmarkFig12GuidedPagingBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(benchScale())
		def, guided := rows[0], rows[1]
		b.ReportMetric(100*(1-guided.DelTxMB/def.DelTxMB), "del-saving-pct")
		b.ReportMetric(100*(1-guided.GetRxMB/def.GetRxMB), "get-saving-pct")
	}
}

// BenchmarkAblationEagerEviction quantifies §4.4's eager background
// reclamation against an on-demand variant.
func BenchmarkAblationEagerEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationEagerEviction(benchScale())
		b.ReportMetric(rows[0].WriteGBs, "eager-write-GBs")
		b.ReportMetric(rows[1].WriteGBs, "ondemand-write-GBs")
	}
}

// BenchmarkAblationSharedQueue quantifies §4.5's shared-nothing queues
// against one queue per core (head-of-line blocking).
func BenchmarkAblationSharedQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationSharedQueue(benchScale())
		b.ReportMetric(rows[0].WriteGBs, "shared-nothing-write-GBs")
		b.ReportMetric(rows[1].WriteGBs, "shared-queue-write-GBs")
		b.ReportMetric(rows[0].FaultP99.Micros(), "shared-nothing-p99-us")
		b.ReportMetric(rows[1].FaultP99.Micros(), "shared-queue-p99-us")
	}
}

// BenchmarkExtMultiNode quantifies the §5.1 sharding extension.
func BenchmarkExtMultiNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtMultiNode(benchScale())
		for _, r := range rows {
			b.ReportMetric(r.ReadGBs, fmt.Sprintf("nodes%d-read-GBs", r.Nodes))
		}
	}
}

// BenchmarkFaultPath measures the host-side (real CPU) cost of one major
// fault through the sharded manager — simulator overhead, not simulated
// latency. The working set is 8× the cache, so every touch in the cycle
// is a major fault with eviction pressure behind it. Guarded by the CI
// bench-baseline check: ns/op regressions past 10% fail the shard-smoke
// job.
func BenchmarkFaultPath(b *testing.B) {
	const pages = 8192
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: pages / 8,
		Cores:       2,
		Shards:      2,
		RemoteBytes: pages*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		Batch:       true,
	})
	sys.Start()
	sys.Launch("bench", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			b.Fatal(err)
		}
		// Warm up: size the slot table and scratch arenas.
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*core.PageSize, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp.LoadU64(base + uint64(i)%pages*core.PageSize)
		}
		b.StopTimer()
	})
	eng.Run()
	if sys.MajorFaults.N < int64(b.N) {
		b.Fatalf("only %d major faults for %d iterations — not exercising the fault path", sys.MajorFaults.N, b.N)
	}
}

// BenchmarkFaultPathObs is BenchmarkFaultPath with the full always-on
// observability plane attached: SLO burn-rate monitor, event journal, and
// a tail-sampled flight recorder (keep every over-budget span, 1 in 16 of
// the rest). The delta against BenchmarkFaultPath is the host-side cost of
// the plane per fault; scripts/benchcheck.sh gates both so the plane can
// never silently grow past the committed baseline.
func BenchmarkFaultPathObs(b *testing.B) {
	const pages = 8192
	eng := sim.New()
	pl := obs.NewPlane()
	pl.Objective = obs.Objective{
		Budget: 25 * sim.Microsecond,
		Target: 0.99,
		Rules:  []obs.BurnRule{{Long: 500 * sim.Microsecond, Short: 100 * sim.Microsecond, MaxBurn: 8}},
	}
	pl.EvalEvery = 50 * sim.Microsecond
	tel := telemetry.NewRecorder(0)
	tel.SetPolicy(telemetry.SamplePolicy{Threshold: 25 * sim.Microsecond, KeepEvery: 16})
	sys := core.New(eng, core.Config{
		CacheFrames: pages / 8,
		Cores:       2,
		Shards:      2,
		RemoteBytes: pages*core.PageSize + (64 << 20),
		Fabric:      fabric.DefaultParams(),
		Batch:       true,
		Obs:         pl,
		Tel:         tel,
	})
	sys.Start()
	sys.Launch("bench", 0, func(sp *core.DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			b.Fatal(err)
		}
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*core.PageSize, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp.LoadU64(base + uint64(i)%pages*core.PageSize)
		}
		b.StopTimer()
	})
	eng.Run()
	if sys.MajorFaults.N < int64(b.N) {
		b.Fatalf("only %d major faults for %d iterations — not exercising the fault path", sys.MajorFaults.N, b.N)
	}
}

// BenchmarkKVDecodeStep measures the host-side cost of one guided KV
// decode step — the full per-token path: layerwise guide notifications,
// prefetch issue on the guide daemon, the token-scan reads with their
// faults, and the append writes. Sequences that fill up are finished and
// recycled off the timer, so steady state includes region reuse.
func BenchmarkKVDecodeStep(b *testing.B) {
	p := kvcache.DefaultParams()
	ws := int(uint64(p.Layers) * p.RegionPages())
	eng := sim.New()
	frames := ws * 3 / 4
	mcfg := pagemgr.DefaultConfig(frames)
	mcfg.LowWater = frames / 4
	mcfg.HighWater = frames / 2
	sys := core.New(eng, core.Config{
		CacheFrames: frames, // smaller than one sequence: decode always pages
		Cores:       2,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
		Batch:       true,
		Mgr:         &mcfg,
	})
	g := kvcache.NewGuide(sys)
	sys.Start()
	var cache *kvcache.Cache
	sys.Launch("bench", 0, func(sp *core.DDCProc) {
		c, err := kvcache.New(sys, p, 1)
		if err != nil {
			b.Fatal(err)
		}
		cache = c
		prefill := func() *kvcache.Sequence {
			s, err := c.Begin()
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Prefill(sp, s, p.MaxTokens/2, g); err != nil {
				b.Fatal(err)
			}
			return s
		}
		s := prefill()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.Tokens() >= p.MaxTokens {
				b.StopTimer()
				c.Finish(sp, s)
				s = prefill()
				b.StartTimer()
			}
			if _, err := c.DecodeStep(sp, s, g); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	})
	eng.Run()
	if cache.BadReads.N != 0 {
		b.Fatalf("%d bad reads during the benchmark", cache.BadReads.N)
	}
}
