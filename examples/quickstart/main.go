// Quickstart: build a DiLOS computing node with 25% local memory, allocate
// disaggregated memory through the POSIX-style compat layer, touch it like
// ordinary memory, and watch the paging subsystem do its work underneath.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
)

func main() {
	// Everything runs in deterministic virtual time on a simulated RDMA
	// fabric calibrated to the paper's testbed (100GbE ConnectX-5).
	eng := sim.New()

	const workingSetPages = 4096 // 16 MiB of application data
	sys := core.New(eng, core.Config{
		CacheFrames: workingSetPages / 4, // 25% local memory
		Cores:       2,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  prefetch.NewReadahead(0), // Linux-style readahead
	})
	sys.Start() // launches the cleaner, reclaimer, and prefetch mappers

	sys.Launch("app", 0, func(sp *core.DDCProc) {
		// The compat layer: plain malloc, plain loads and stores. The
		// application does not know (or care) that 75% of its heap lives
		// on the memory node.
		buf := sp.Malloc(workingSetPages * 4096)

		fmt.Println("writing 16 MiB through the unified page table...")
		for i := uint64(0); i < workingSetPages; i++ {
			sp.StoreU64(buf+i*4096, i*i)
		}
		fmt.Println("reading it back (most pages now live on the memory node)...")
		bad := 0
		for i := uint64(0); i < workingSetPages; i++ {
			if sp.LoadU64(buf+i*4096) != i*i {
				bad++
			}
		}
		fmt.Printf("verified %d pages, %d mismatches, virtual time %v\n",
			workingSetPages, bad, sp.Now())
	})
	eng.Run()

	fmt.Println()
	fmt.Println("what the LibOS did meanwhile:")
	fmt.Printf("  major faults:     %d (remote fetches)\n", sys.MajorFaults.N)
	fmt.Printf("  minor faults:     %d (waited on an in-flight prefetch)\n", sys.MinorFaults.N)
	fmt.Printf("  prefetch hits:    %d (page already mapped on arrival)\n", sys.LateMapHits.N)
	fmt.Printf("  pages prefetched: %d\n", sys.Prefetches.N)
	fmt.Printf("  cleaner wrote:    %d dirty pages back (off the fault path)\n", sys.Mgr.Cleaned.N)
	fmt.Printf("  reclaimer evicted:%d cold pages (fault path reclaim: 0)\n", sys.Mgr.Evicted.N)
	e, h, f, m, _ := sys.BD.Mean()
	fmt.Printf("  mean major fault: %v (exception %v + handler %v + fetch %v + map %v)\n",
		sys.BD.Total(), e, h, f, m)
	fmt.Printf("  network:          rx %d MiB, tx %d MiB\n",
		sys.Link.RxBytes.N>>20, sys.Link.TxBytes.N>>20)
}
