// Redis guide demo (§6.3, Figure 11): run the LRANGE workload on DiLOS
// under memory pressure, first with the trend-based general-purpose
// prefetcher, then with the app-aware quicklist guide — the pluggable
// module that subpage-reads list nodes ahead of the traversal.
//
//	go run ./examples/redisguide
package main

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/prefetch"
	"dilos/internal/redis"
	"dilos/internal/sim"
)

const (
	lists    = 64
	elements = 16000
	queries  = 400
)

func run(label string, pf prefetch.Prefetcher, guide *redis.AppGuide) redis.LRANGEResult {
	eng := sim.New()
	cfg := core.Config{
		CacheFrames: 512, // far less than the ~2MB lists + structures
		Cores:       2,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  pf,
	}
	sys := core.New(eng, cfg)
	if guide != nil {
		sys.AttachGuide(guide)
	}
	sys.Start()
	var res redis.LRANGEResult
	sys.Launch("redis", 0, func(sp *core.DDCProc) {
		srv := redis.NewServer(sp)
		if guide != nil {
			guide.Install(srv, sp.Proc())
		}
		redis.PopulateLRANGE(srv, lists, elements, 100, 7)
		// Push the lists out of the local cache.
		spoiler, _ := sys.MmapDDC(1024)
		for i := uint64(0); i < 1024; i++ {
			sp.StoreU8(spoiler+i*4096, 1)
		}
		res = redis.RunLRANGE(sp, srv, lists, queries, 9)
	})
	eng.Run()
	fmt.Printf("%-28s %8.0f ops/s   p99 %v", label, res.ThroughputOps(), res.Latency.P99())
	if guide != nil {
		fmt.Printf("   (guide: %d subpage reads, %d page prefetches)",
			guide.SubpageReads, guide.PagePrefetch)
	}
	fmt.Println()
	return res
}

func main() {
	fmt.Printf("LRANGE_100 over %d lists, %d elements, 12.5%%-ish local memory\n\n", lists, elements)
	none := run("no prefetch", nil, nil)
	trend := run("trend-based (Leap)", prefetch.NewTrend(), nil)
	guided := run("app-aware quicklist guide", nil, redis.NewAppGuide())
	fmt.Println()
	fmt.Printf("guide vs no-prefetch: %+.0f%%\n",
		100*(guided.ThroughputOps()/none.ThroughputOps()-1))
	fmt.Printf("guide vs trend:       %+.0f%%   (paper: +62%% over general-purpose)\n",
		100*(guided.ThroughputOps()/trend.ThroughputOps()-1))
}
