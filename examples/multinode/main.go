// Multi-node demo: the §5.1 future-work features implemented — sharding
// disaggregated memory across several memory nodes and keeping replicas so
// a node failure loses nothing.
//
//	go run ./examples/multinode
package main

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
)

func main() {
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 256,
		Cores:       2,
		RemoteBytes: 128 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  prefetch.NewReadahead(0),
		MemNodes:    3, // page-round-robin sharding
		Replicas:    2, // every page on two distinct nodes
	})
	sys.Start()

	const pages = 1024
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		base, _ := sys.MmapDDC(pages)
		fmt.Println("writing 4 MiB striped across 3 memory nodes, 2 replicas each...")
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*core.PageSize, i*31)
		}
		for i := uint64(0); i < pages; i++ { // cycle the cache
			sp.LoadU8(base + i*core.PageSize)
		}
		for n, link := range sys.Links {
			fmt.Printf("  node %d: rx %4d KiB, tx %4d KiB\n",
				n, link.RxBytes.N>>10, link.TxBytes.N>>10)
		}

		fmt.Println("\nkilling memory node 1 ...")
		if err := sys.Space().SetState(1, placement.Failed); err != nil {
			panic(err)
		}
		bad := 0
		for i := uint64(0); i < pages; i++ {
			if sp.LoadU64(base+i*core.PageSize) != i*31 {
				bad++
			}
		}
		fmt.Printf("re-read all %d pages after the failure: %d lost\n", pages, bad)
		fmt.Printf("fetches served by a surviving replica: %d\n", sys.ReplicaFetches.N)
	})
	eng.Run()
}
