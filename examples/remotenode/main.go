// Remote node demo: the real TCP memory-node protocol end to end. Starts
// an in-process memnoded (or dials an external one with -addr), allocates
// remote pages, and exercises one-sided READ/WRITE plus the vectored
// scatter/gather ops guided paging uses.
//
//	go run ./examples/remotenode
//	go run ./examples/remotenode -addr host:7479 -pkey 0xd170
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"dilos/internal/memnode"
	"dilos/internal/transport"
)

func main() {
	addr := flag.String("addr", "", "memnoded address (empty: start one in-process)")
	pkey := flag.Uint("pkey", 0xd170, "protection key")
	flag.Parse()

	if *addr == "" {
		node := memnode.New(64<<20, uint32(*pkey))
		srv := transport.NewServer(node)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve()
		defer srv.Close()
		*addr = bound
		fmt.Printf("started in-process memory node on %s\n", bound)
	}

	c, err := transport.Dial(*addr, uint32(*pkey))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	size, inUse, err := c.Info()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory node: %d MiB registered, %d pages in use\n", size>>20, inUse)

	// Allocate a 16-page region (what MmapDDC does on the control path).
	base, err := c.Alloc(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated 16 pages at remote offset %#x\n", base)

	// One-sided WRITE + READ (the page fault handler's data path).
	page := bytes.Repeat([]byte("dilos!"), 683)[:4096]
	if err := c.Write(base, page); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := c.Read(base, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 KiB page round trip: match=%t\n", bytes.Equal(page, got))

	// Vectored ops: move only the live chunks of a fragmented page, as
	// guided paging does (§4.4) — three segments, the paper's sweet spot.
	segs := []transport.Seg{
		{Off: base + 4096 + 0, Len: 128},
		{Off: base + 4096 + 1024, Len: 256},
		{Off: base + 4096 + 3968, Len: 128},
	}
	bufs := [][]byte{
		bytes.Repeat([]byte{0xaa}, 128),
		bytes.Repeat([]byte{0xbb}, 256),
		bytes.Repeat([]byte{0xcc}, 128),
	}
	if err := c.WriteV(segs, bufs); err != nil {
		log.Fatal(err)
	}
	back := [][]byte{make([]byte, 128), make([]byte, 256), make([]byte, 128)}
	if err := c.ReadV(segs, back); err != nil {
		log.Fatal(err)
	}
	ok := bytes.Equal(back[0], bufs[0]) && bytes.Equal(back[1], bufs[1]) && bytes.Equal(back[2], bufs[2])
	fmt.Printf("vectored round trip (3 segments, %d live bytes of 4096): match=%t\n",
		128+256+128, ok)

	// The protection key is enforced per request, like the RNIC's rkey.
	evil, err := transport.Dial(*addr, uint32(*pkey)+1)
	if err != nil {
		log.Fatal(err)
	}
	defer evil.Close()
	if err := evil.Read(base, make([]byte, 8)); err != nil {
		fmt.Printf("wrong protection key correctly rejected: %v\n", err)
	}
}
