// DataFrame demo (§6.2, Figure 8): the NYC-taxi-style analysis on three
// far-memory systems at two local-memory settings, showing the paper's
// headline result — the transparent paging system (DiLOS) matches or beats
// the user-level system (AIFM) without touching application code, while
// Fastswap falls behind as memory shrinks.
//
//	go run ./examples/dataframe
package main

import (
	"fmt"

	"dilos/internal/aifm"
	"dilos/internal/core"
	"dilos/internal/dataframe"
	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
)

const rows = 60000

func main() {
	fmt.Printf("NYC-taxi analysis over %d trips (7 columns)\n\n", rows)
	fmt.Printf("%-12s %12s %12s\n", "", "12.5% local", "100% local")

	checks := map[uint64]bool{}
	for _, sys := range []string{"Fastswap", "DiLOS", "AIFM"} {
		fmt.Printf("%-12s", sys)
		for _, frac := range []float64{0.125, 1.0} {
			var elapsed sim.Time
			var check uint64
			switch sys {
			case "Fastswap":
				elapsed, check = runFastswap(frac)
			case "DiLOS":
				elapsed, check = runDiLOS(frac)
			case "AIFM":
				elapsed, check = runAIFM(frac)
			}
			fmt.Printf(" %11.2fms", float64(elapsed)/1e6)
			checks[check] = true
		}
		fmt.Println()
	}
	if len(checks) == 1 {
		fmt.Println("\nidentical query results verified across all six runs ✓")
	} else {
		fmt.Printf("\nWARNING: %d distinct result checksums!\n", len(checks))
	}
}

func frames(frac float64) int {
	f := int(float64(rows) * 7 * 8 / 4096 * frac)
	if f < 96 {
		f = 96
	}
	return f
}

func runDiLOS(frac float64) (sim.Time, uint64) {
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: frames(frac), Cores: 2, RemoteBytes: 256 << 20,
		Fabric: fabric.DefaultParams(), Prefetcher: prefetch.NewReadahead(0),
	})
	sys.Start()
	var elapsed sim.Time
	var check uint64
	sys.Launch("df", 0, func(sp *core.DDCProc) {
		f := dataframe.NewSpaceFrame(sp, rows)
		dataframe.Generate(f, 5)
		r := dataframe.RunTaxiAnalysis(sp, f)
		elapsed, check = r.Elapsed, r.Checksum
	})
	eng.Run()
	return elapsed, check
}

func runFastswap(frac float64) (sim.Time, uint64) {
	eng := sim.New()
	sys := fastswap.New(eng, fastswap.Config{
		CacheFrames: frames(frac), Cores: 2, RemoteBytes: 256 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	var elapsed sim.Time
	var check uint64
	sys.Launch("df", 0, func(sp *fastswap.FSProc) {
		f := dataframe.NewSpaceFrame(sp, rows)
		dataframe.Generate(f, 5)
		r := dataframe.RunTaxiAnalysis(sp, f)
		elapsed, check = r.Elapsed, r.Checksum
	})
	eng.Run()
	return elapsed, check
}

func runAIFM(frac float64) (sim.Time, uint64) {
	eng := sim.New()
	sys := aifm.New(eng, aifm.Config{
		LocalBytes:  uint64(float64(rows*7*8) * frac),
		RemoteBytes: 256 << 20,
		Fabric:      fabric.TCPParams(), // AIFM runs over TCP, as in the paper
	})
	sys.Start()
	var elapsed sim.Time
	var check uint64
	sys.Launch("df", func(th *aifm.Thread) {
		f, err := dataframe.NewAIFMFrame(sys, th, rows)
		if err != nil {
			panic(err)
		}
		dataframe.Generate(f, 5)
		r := dataframe.RunTaxiAnalysis(th, f)
		elapsed, check = r.Elapsed, r.Checksum
	})
	eng.Run()
	return elapsed, check
}
